"""Overload-safe serving: admission control, deadlines, KV pressure, backpressure.

The plain :class:`~repro.serving.server.Server` admits every arrival
unconditionally, so a burst (or a decode-heavy mix whose KV context grows
steadily — the dominant steady-state pressure per the communication
characterization literature) lets pending batches and KV bytes grow without
bound until latency collapses.  This module makes the serving path *degrade
gracefully* instead:

1. **Admission control** — a bounded pending queue with pluggable policies
   (:class:`AdmissionPolicy`): ``reject`` new arrivals when full,
   ``shed-oldest`` (drop the head of the queue, which has already burned the
   most slack), or ``shed-by-deadline`` (drop the queued batch most likely to
   miss its deadline anyway).  Every rejected request is stamped with the
   terminal ``SHED`` state — nothing is silently dropped.
2. **Deadlines** — requests carry absolute deadlines
   (:attr:`~repro.serving.request.Request.deadline`).  A request whose
   deadline passes while pending is shed *cheaply* (terminal ``TIMED_OUT``,
   no kernels launched); one that expires mid-execution completes and is
   recorded as a deadline miss.  SLO attainment lands in
   :class:`~repro.serving.metrics.ServingMetrics`.
3. **KV-cache accounting** — the :class:`KVCacheAccountant` tracks the
   per-GPU KV bytes of every in-flight batch
   (:func:`repro.models.kvcache.batch_kv_bytes` against the capacity left
   after weights, :mod:`repro.sim.memory`), refuses admission when a batch
   would exceed capacity, and under pressure preempts-and-requeues the
   *youngest* KV-admitted decode batch so older (or deadline-critical) work
   is never blocked behind it.
4. **Backpressure / circuit breaker** — a heartbeat samples queue depth and
   SLO attainment.  Sustained overload *opens* the breaker: arrivals are
   shed immediately (fail fast) and, when a
   :class:`~repro.faults.resilience.RecoveryManager` is armed, the run is
   downgraded liger → intra (interleaving buys latency, not saturation
   throughput).  When the queue drains below the low watermark the breaker
   closes and the recovery manager's probe upgrades back.

The whole layer is zero-cost when disabled: a server constructed without an
:class:`OverloadConfig` takes exactly the pre-existing code path.
"""

from __future__ import annotations

import enum
import logging
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError, OutOfMemoryError
from repro.hw.devices import NodeSpec
from repro.models.kvcache import batch_kv_bytes
from repro.models.specs import ModelSpec
from repro.obs.events import (
    BatchPreempted,
    BatchStaged,
    BreakerClosed,
    BreakerOpened,
    EventBus,
    RequestsAdmitted,
    RequestsShed,
    RequestsTimedOut,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.request import Batch, Phase, Request
from repro.sim.engine import Engine

logger = logging.getLogger("repro.serving.overload")

__all__ = [
    "AdmissionPolicy",
    "OverloadConfig",
    "KVCacheAccountant",
    "BreakerEvent",
    "OverloadReport",
    "OverloadController",
]


class AdmissionPolicy(enum.Enum):
    """What to do when an arrival finds the pending queue full."""

    #: Shed the arriving batch (classic bounded queue).
    REJECT = "reject"
    #: Shed the oldest queued batch to make room (its slack is most burned).
    SHED_OLDEST = "shed-oldest"
    #: Shed the queued batch with the earliest deadline — it is the least
    #: likely to be served in time, so dropping it wastes the least work.
    #: Falls back to rejecting the arrival when nothing queued has a deadline.
    SHED_BY_DEADLINE = "shed-by-deadline"


@dataclass(frozen=True)
class OverloadConfig:
    """Tunable knobs of the overload layer (times in µs)."""

    #: Bound on queued-but-not-yet-admitted requests (the pending queue).
    max_pending_requests: int = 64
    #: Admission policy applied when the queue is full.
    policy: AdmissionPolicy = AdmissionPolicy.REJECT
    #: Deadline stamped on deadline-less requests at arrival, relative to
    #: their own arrival time; ``None`` leaves them SLO-free.
    default_deadline_us: Optional[float] = None
    #: Batches handed to the strategy concurrently (the dispatch window).
    max_inflight_batches: int = 4
    #: KV-admitted batches allowed to wait for a dispatch slot (the runway
    #: preemption operates on).
    max_staged_batches: int = 2
    #: Fraction of the per-GPU capacity left after weights that serving KV
    #: (plus activation workspaces) may occupy.
    kv_capacity_frac: float = 0.9
    #: Master switch for the KV accountant.
    enable_kv_accounting: bool = True
    #: Allow preempting-and-requeueing young staged decode batches.
    enable_preemption: bool = True
    #: Master switch for the backpressure circuit breaker.
    breaker_enabled: bool = True
    breaker_check_period_us: float = 5_000.0
    #: Queue depth (requests) that counts as overload / as drained, as
    #: fractions of ``max_pending_requests``.
    breaker_high_frac: float = 0.75
    breaker_low_frac: float = 0.25
    #: SLO attainment below this (with the queue non-empty) also counts as
    #: an overload signal.
    breaker_min_attainment: float = 0.5
    #: Consecutive overloaded checks before the breaker opens.
    breaker_trip_checks: int = 2

    def __post_init__(self) -> None:
        if self.max_pending_requests < 1:
            raise ConfigError("max_pending_requests must be >= 1")
        if self.max_inflight_batches < 1:
            raise ConfigError("max_inflight_batches must be >= 1")
        if self.max_staged_batches < 0:
            raise ConfigError("max_staged_batches must be >= 0")
        if not isinstance(self.policy, AdmissionPolicy):
            try:
                coerced = AdmissionPolicy(self.policy)
            except ValueError:
                valid = ", ".join(p.value for p in AdmissionPolicy)
                raise ConfigError(
                    f"unknown admission policy {self.policy!r}; "
                    f"choose from {valid}"
                ) from None
            object.__setattr__(self, "policy", coerced)
        if self.default_deadline_us is not None and self.default_deadline_us <= 0:
            raise ConfigError("default_deadline_us must be positive")
        if not 0.0 < self.kv_capacity_frac <= 1.0:
            raise ConfigError("kv_capacity_frac must be in (0, 1]")
        if self.breaker_check_period_us <= 0:
            raise ConfigError("breaker_check_period_us must be positive")
        if not 0.0 <= self.breaker_low_frac <= self.breaker_high_frac <= 1.0:
            raise ConfigError("need 0 <= low_frac <= high_frac <= 1")
        if self.breaker_trip_checks < 1:
            raise ConfigError("breaker_trip_checks must be >= 1")


class KVCacheAccountant:
    """Per-GPU KV-byte ledger across in-flight serving batches.

    Capacity is what one GPU has left after its weight shard, scaled by
    ``capacity_frac`` (the complement is activation/workspace headroom).
    Charging is all-or-nothing: :meth:`charge` raises
    :class:`~repro.errors.OutOfMemoryError` rather than oversubscribe, so
    ``used <= capacity`` is an invariant, not a hope.
    """

    def __init__(
        self, model: ModelSpec, node: NodeSpec, *, capacity_frac: float = 0.9
    ) -> None:
        if not 0.0 < capacity_frac <= 1.0:
            raise ConfigError("capacity_frac must be in (0, 1]")
        self.model = model
        self.tp = node.num_gpus
        free = node.gpu.memory_capacity - model.weight_bytes_per_device(self.tp)
        if free <= 0:
            raise ConfigError(
                f"{model.name} weights alone exceed {node.name} GPU memory"
            )
        self.capacity = free * capacity_frac
        self._charged: Dict[int, float] = {}
        self.used = 0.0
        self.peak = 0.0

    def bytes_for(self, batch: Batch) -> float:
        """Per-GPU KV bytes ``batch`` will hold while in flight."""
        return batch_kv_bytes(self.model, batch, self.tp)

    def would_fit(self, nbytes: float) -> bool:
        """Whether charging ``nbytes`` more would stay within the budget."""
        return self.used + nbytes <= self.capacity

    def charge(self, batch: Batch) -> float:
        """Charge the batch's KV footprint; raises rather than oversubscribe."""
        if batch.batch_id in self._charged:
            raise ConfigError(f"batch {batch.batch_id} already KV-charged")
        nbytes = self.bytes_for(batch)
        if not self.would_fit(nbytes):
            raise OutOfMemoryError(
                f"KV admission of batch {batch.batch_id} "
                f"({nbytes / 1e9:.3f} GB) would exceed capacity "
                f"({(self.capacity - self.used) / 1e9:.3f} GB free)"
            )
        self._charged[batch.batch_id] = nbytes
        self.used += nbytes
        self.peak = max(self.peak, self.used)
        return nbytes

    def release(self, batch_id: int) -> float:
        """Release a charge (idempotent); returns the freed byte count."""
        nbytes = self._charged.pop(batch_id, 0.0)
        self.used -= nbytes
        return nbytes

    @property
    def inflight(self) -> int:
        return len(self._charged)


@dataclass(frozen=True)
class BreakerEvent:
    """One circuit-breaker transition."""

    time_us: float
    state: str  #: ``"open"`` or ``"closed"``
    reason: str

    def describe(self) -> str:
        """One-line human-readable rendering of the transition."""
        return f"t={self.time_us:.0f}us breaker {self.state}: {self.reason}"


@dataclass
class OverloadReport:
    """What the overload layer did during one serving run."""

    policy: str = "reject"
    admitted_requests: int = 0
    shed_requests: int = 0
    timed_out_requests: int = 0
    preempted_batches: int = 0
    peak_pending_requests: int = 0
    peak_kv_bytes: float = 0.0
    kv_capacity_bytes: float = 0.0
    breaker_trips: int = 0
    events: List[BreakerEvent] = field(default_factory=list)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            "overload report:",
            f"  policy: {self.policy}",
            f"  admitted {self.admitted_requests}, shed {self.shed_requests}, "
            f"timed out {self.timed_out_requests} request(s); "
            f"{self.preempted_batches} batch(es) preempted",
            f"  peak pending queue: {self.peak_pending_requests} request(s)",
        ]
        if self.kv_capacity_bytes > 0:
            lines.append(
                f"  peak KV: {self.peak_kv_bytes / 1e9:.3f} GB of "
                f"{self.kv_capacity_bytes / 1e9:.3f} GB budget"
            )
        lines.append(f"  breaker: {self.breaker_trips} trip(s)")
        shown = self.events[:8]
        for ev in shown:
            lines.append(f"    {ev.describe()}")
        if len(self.events) > len(shown):
            lines.append(
                f"    ... {len(self.events) - len(shown)} more transition(s)"
            )
        return "\n".join(lines)


class OverloadController:
    """Admission → deadline → KV pressure → backpressure pipeline.

    Sits between the server's arrival loop and the (recovery-wrapped)
    strategy.  Batches flow ``pending → staged → dispatched``: *pending* is
    the bounded admission queue, *staged* batches hold a KV charge while
    waiting for one of ``max_inflight_batches`` dispatch slots, and
    *dispatched* batches are executing downstream.  Preemption acts on the
    staged runway — the youngest staged decode batch is evicted (KV
    released, requeued at the back) whenever it blocks older work, so
    head-of-line requests are never starved by late-arriving KV hogs.
    """

    def __init__(
        self,
        config: OverloadConfig,
        model: ModelSpec,
        node: NodeSpec,
        engine: Engine,
        metrics: ServingMetrics,
        downstream: Callable[[Batch], None],
        *,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.config = config
        self.engine = engine
        self.metrics = metrics
        self.downstream = downstream
        self.bus = bus
        self.accountant: Optional[KVCacheAccountant] = None
        if config.enable_kv_accounting:
            self.accountant = KVCacheAccountant(
                model, node, capacity_frac=config.kv_capacity_frac
            )
        self.report = OverloadReport(
            policy=config.policy.value,
            kv_capacity_bytes=(
                self.accountant.capacity if self.accountant else 0.0
            ),
        )
        self._pending: Deque[Batch] = deque()
        self._staged: "OrderedDict[int, Batch]" = OrderedDict()
        self._dispatched: Dict[int, Batch] = {}
        self.breaker_open = False
        self._over_checks = 0
        self._slo_tracked_at_check = 0
        self._slo_met_at_check = 0
        self.recovery = None  # optional RecoveryManager, wired by the server
        #: Optional SLO-burn advisory (wired by the session when burn-rate
        #: policies are configured): while it returns True the breaker
        #: treats the *low* watermark as the trip threshold.
        self.advisor: Optional[Callable[[], bool]] = None
        #: Breaker trips in which the advisory lowered the threshold.
        self.advisory_trips = 0
        self._high = max(
            1, int(config.breaker_high_frac * config.max_pending_requests)
        )
        self._low = int(config.breaker_low_frac * config.max_pending_requests)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_recovery(self, recovery) -> None:
        """Let breaker trips downgrade the strategy via ``recovery``.

        Also holds the recovery manager's upgrade probe back until the
        queue has drained below the low watermark — recovering into a still
        full queue would immediately re-trip.
        """
        self.recovery = recovery
        recovery.hold_upgrade = lambda: (
            self.breaker_open or self.queue_depth > self._low
        )

    def attach_advisor(self, advisor: Callable[[], bool]) -> None:
        """Wire the SLO fast-burn advisory into the breaker's trip logic."""
        self.advisor = advisor

    def arm(self) -> None:
        """Start the backpressure heartbeat (call once work is scheduled)."""
        if self.config.breaker_enabled:
            self.engine.heartbeat(
                self.config.breaker_check_period_us,
                self._breaker_check,
                priority=9,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests waiting in the pending queue."""
        return sum(b.size for b in self._pending)

    @property
    def inflight_batches(self) -> int:
        return len(self._staged) + len(self._dispatched)

    def idle(self) -> bool:
        """True when no batch is pending, staged, or dispatched."""
        return not (self._pending or self._staged or self._dispatched)

    # ------------------------------------------------------------------
    # Arrival path
    # ------------------------------------------------------------------
    def on_arrival(self, batch: Batch) -> None:
        """Admit, queue, or shed one arriving batch."""
        now = self.engine.now
        cfg = self.config
        if cfg.default_deadline_us is not None:
            for r in batch.requests:
                if r.deadline is None:
                    r.deadline = r.arrival + cfg.default_deadline_us
        if self.breaker_open:
            self._shed_batch(batch, where="breaker")  # fail fast: saturated
            return
        if self._expire_if_due(batch, now):
            return
        if not self._make_room(batch):
            return  # policy shed the arrival itself
        self.report.admitted_requests += batch.size
        if self.bus is not None:
            self.bus.publish(RequestsAdmitted.from_batch(batch, now))
        self._pending.append(batch)
        self.report.peak_pending_requests = max(
            self.report.peak_pending_requests, self.queue_depth
        )
        self._pump()

    def _make_room(self, batch: Batch) -> bool:
        """Enforce the queue bound; returns False if the arrival was shed."""
        cfg = self.config
        while self.queue_depth + batch.size > cfg.max_pending_requests:
            if cfg.policy is AdmissionPolicy.SHED_OLDEST and self._pending:
                self._shed_batch(self._pending.popleft())
                continue
            if cfg.policy is AdmissionPolicy.SHED_BY_DEADLINE:
                victim = self._earliest_deadline_pending()
                if victim is not None:
                    self._pending.remove(victim)
                    self._shed_batch(victim)
                    continue
            # REJECT, or no shed-able victim left: drop the arrival.
            self._shed_batch(batch)
            return False
        return True

    def _earliest_deadline_pending(self) -> Optional[Batch]:
        best: Optional[Tuple[float, Batch]] = None
        for b in self._pending:
            d = b.deadline
            if d is not None and (best is None or d < best[0]):
                best = (d, b)
        return best[1] if best else None

    # ------------------------------------------------------------------
    # Dispatch pipeline
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Move work pending → staged → dispatched as far as bounds allow."""
        now = self.engine.now
        cfg = self.config
        # Dispatch the staged runway first (it is older than any pending).
        while self._staged and len(self._dispatched) < cfg.max_inflight_batches:
            bid, batch = next(iter(self._staged.items()))
            del self._staged[bid]
            if batch.deadline is not None and now > batch.deadline:
                self._release_kv(bid)
                self._expire_batch(batch, now)
                continue
            self._dispatch(batch)
        # Admit from the pending queue.
        while self._pending:
            free_slot = len(self._dispatched) < cfg.max_inflight_batches
            if not free_slot and len(self._staged) >= cfg.max_staged_batches:
                return
            head = self._pending[0]
            if head.deadline is not None and now > head.deadline:
                self._pending.popleft()
                self._expire_batch(head, now)  # shed cheaply: nothing launched
                continue
            if not self._admit_kv(head):
                return  # wait for a completion to free capacity
            self._pending.popleft()
            if free_slot:
                self._dispatch(head)
            else:
                self._staged[head.batch_id] = head
                if self.bus is not None:
                    self.bus.publish(
                        BatchStaged(
                            time_us=now,
                            batch_id=head.batch_id,
                            size=head.size,
                        )
                    )

    def _admit_kv(self, batch: Batch) -> bool:
        """Charge ``batch``'s KV, preempting young staged decodes if needed."""
        if self.accountant is None:
            return True
        nbytes = self.accountant.bytes_for(batch)
        while not self.accountant.would_fit(nbytes):
            victim = self._preemption_victim(batch)
            if victim is None:
                if not self._dispatched and not self._staged:
                    # Nothing in flight will ever free this much KV.
                    raise OutOfMemoryError(
                        f"batch {batch.batch_id} needs "
                        f"{nbytes / 1e9:.3f} GB of KV but the budget is "
                        f"{self.accountant.capacity / 1e9:.3f} GB"
                    )
                return False
            self._preempt(victim)
        self.accountant.charge(batch)
        self.report.peak_kv_bytes = self.accountant.peak
        return True

    def _preemption_victim(self, head: Batch) -> Optional[Batch]:
        """Youngest staged decode batch that arrived after ``head``."""
        if not self.config.enable_preemption:
            return None
        candidates = [
            b
            for b in self._staged.values()
            if b.phase is Phase.DECODE and b.arrival > head.arrival
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda b: b.arrival)

    def _preempt(self, batch: Batch) -> None:
        """Evict a staged decode batch: release KV, requeue at the back."""
        del self._staged[batch.batch_id]
        self._release_kv(batch.batch_id)
        self._pending.append(batch)
        self.metrics.preemptions += 1
        self.report.preempted_batches += 1
        self.report.peak_pending_requests = max(
            self.report.peak_pending_requests, self.queue_depth
        )
        logger.info(
            "t=%.0fus preempted staged decode batch %d (%d request(s)) "
            "under KV pressure",
            self.engine.now,
            batch.batch_id,
            batch.size,
        )
        if self.bus is not None:
            self.bus.publish(
                BatchPreempted(
                    time_us=self.engine.now,
                    batch_id=batch.batch_id,
                    size=batch.size,
                )
            )

    def _dispatch(self, batch: Batch) -> None:
        self._dispatched[batch.batch_id] = batch
        self.downstream(batch)

    # ------------------------------------------------------------------
    # Completion / downstream-shed path
    # ------------------------------------------------------------------
    def on_complete(self, batch: Batch, time: float) -> None:
        """Release the batch's slot and KV charge, then refill the window."""
        self._dispatched.pop(batch.batch_id, None)
        self._release_kv(batch.batch_id)
        self._pump()

    def on_downstream_shed(self, batch: Batch) -> None:
        """The recovery layer dropped a dispatched batch (retry exhaustion)."""
        self._dispatched.pop(batch.batch_id, None)
        self._release_kv(batch.batch_id)
        self.report.shed_requests += batch.size
        self._pump()

    def _release_kv(self, batch_id: int) -> None:
        if self.accountant is not None:
            self.accountant.release(batch_id)
            self.report.peak_kv_bytes = self.accountant.peak

    # ------------------------------------------------------------------
    # Terminal bookkeeping
    # ------------------------------------------------------------------
    def _shed_batch(self, batch: Batch, *, where: str = "admission") -> None:
        batch.shed()
        self.metrics.note_shed(batch.requests)
        self.report.shed_requests += batch.size
        if self.bus is not None:
            self.bus.publish(
                RequestsShed.from_requests(
                    batch.requests,
                    self.engine.now,
                    batch_id=batch.batch_id,
                    where=where,
                )
            )

    def _expire_if_due(self, batch: Batch, now: float) -> bool:
        if batch.deadline is not None and now > batch.deadline:
            self._expire_batch(batch, now)
            return True
        return False

    def _expire_batch(self, batch: Batch, now: float) -> None:
        """Terminal split: expired members time out, the rest are collateral."""
        expired: List[Request] = []
        collateral: List[Request] = []
        for r in batch.requests:
            if r.deadline_passed(now):
                r.mark_timed_out()
                expired.append(r)
            else:
                r.mark_shed()
                collateral.append(r)
        self.metrics.note_timed_out(expired)
        self.report.timed_out_requests += len(expired)
        if self.bus is not None and expired:
            self.bus.publish(
                RequestsTimedOut.from_requests(
                    expired, now, batch_id=batch.batch_id, where="pending"
                )
            )
        if collateral:
            self.metrics.note_shed(collateral)
            self.report.shed_requests += len(collateral)
            if self.bus is not None:
                self.bus.publish(
                    RequestsShed.from_requests(
                        collateral,
                        now,
                        batch_id=batch.batch_id,
                        where="collateral",
                    )
                )

    # ------------------------------------------------------------------
    # Backpressure circuit breaker
    # ------------------------------------------------------------------
    def _breaker_check(self) -> Optional[bool]:
        depth = self.queue_depth
        # SLO attainment over this check window only: the cumulative ratio
        # can never recover after one bad burst, which would flap the
        # breaker open on every check for the rest of the run.
        tracked = self.metrics.slo_tracked - self._slo_tracked_at_check
        met = self.metrics.slo_met - self._slo_met_at_check
        if tracked > 0:
            # Advance the baseline only when the window saw outcomes, so
            # sparse completions accumulate instead of yielding a stream of
            # empty (hence uninformative) windows.
            self._slo_tracked_at_check = self.metrics.slo_tracked
            self._slo_met_at_check = self.metrics.slo_met
        attainment = (met / tracked) if tracked > 0 else None
        # Under an active SLO fast-burn advisory the budget is already
        # being spent at page-rate, so the breaker trips at the low
        # watermark instead of waiting for the queue to reach the high one.
        advisory = self.advisor is not None and self.advisor()
        high = self._low if advisory else self._high
        too_deep = depth > high
        slo_collapsed = (
            depth > 0
            and attainment is not None
            and attainment < self.config.breaker_min_attainment
        )
        if self.breaker_open:
            if depth <= self._low:
                self._close_breaker(depth)
            return None
        if too_deep or slo_collapsed:
            self._over_checks += 1
            if self._over_checks >= self.config.breaker_trip_checks:
                self._open_breaker(
                    depth, attainment, too_deep, slo_collapsed, advisory, high
                )
        else:
            self._over_checks = 0
        return None

    def _open_breaker(
        self,
        depth: int,
        attainment: Optional[float],
        too_deep: bool,
        slo_collapsed: bool,
        advisory: bool = False,
        high: Optional[int] = None,
    ) -> None:
        self.breaker_open = True
        self._over_checks = 0
        self.report.breaker_trips += 1
        if advisory:
            self.advisory_trips += 1
        parts = []
        if too_deep:
            threshold = self._high if high is None else high
            parts.append(f"queue depth {depth} > {threshold}")
            if advisory:
                parts.append("slo-burn advisory lowered watermark")
        if slo_collapsed:
            parts.append(
                f"window SLO attainment {attainment:.2f} < "
                f"{self.config.breaker_min_attainment:.2f}"
            )
        reason = ", ".join(parts) or f"queue depth {depth}"
        self.report.events.append(
            BreakerEvent(self.engine.now, "open", reason)
        )
        logger.warning(
            "t=%.0fus backpressure breaker OPEN: %s", self.engine.now, reason
        )
        if self.bus is not None:
            self.bus.publish(
                BreakerOpened(time_us=self.engine.now, reason=reason)
            )
        if self.recovery is not None:
            self.recovery.overload_downgrade(f"backpressure: {reason}")

    def _close_breaker(self, depth: int) -> None:
        self.breaker_open = False
        reason = f"queue drained to {depth} <= {self._low}"
        self.report.events.append(
            BreakerEvent(self.engine.now, "closed", reason)
        )
        logger.info(
            "t=%.0fus backpressure breaker closed: %s", self.engine.now, reason
        )
        if self.bus is not None:
            self.bus.publish(
                BreakerClosed(time_us=self.engine.now, reason=reason)
            )
