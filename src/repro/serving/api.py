"""One-call serving API: build the whole stack and run a workload.

This is the library's front door::

    from repro import serve, v100_nvlink_node, OPT_30B
    result = serve(model=OPT_30B, node=v100_nvlink_node(4),
                   strategy="liger", arrival_rate=8.0, num_requests=64)
    print(result.summary())

``strategy`` selects among the paper's four systems:

* ``"intra"`` — Megatron tensor parallelism (Intra-Op baseline),
* ``"inter"`` — equal-stage pipeline (Inter-Op baseline),
* ``"inter_th"`` — pipeline over partitioned kernels (Inter-Th baseline),
* ``"liger"`` — interleaved parallelism (the paper's contribution).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple, Type

from repro.errors import ConfigError
from repro.hw.devices import NodeSpec
from repro.models.specs import ModelSpec
from repro.parallel.base import ParallelStrategy
from repro.parallel.hybrid import HybridStrategy
from repro.parallel.inter_op import InterOpStrategy
from repro.parallel.inter_theoretical import InterTheoreticalStrategy
from repro.parallel.intra_op import IntraOpStrategy
from repro.profiling.profiler import OpProfiler
from repro.serving.server import Server, ServingResult
from repro.serving.session import ServingConfig
from repro.serving.workload import general_trace, generative_trace
from repro.sim.interconnect import NcclConfig

__all__ = ["serve", "make_strategy", "STRATEGIES"]


def _strategy_registry() -> Dict[str, Type[ParallelStrategy]]:
    # Liger imports the serving layer, so resolve it lazily.
    from repro.parallel.interleaved import InterleavedStrategy

    return {
        "intra": IntraOpStrategy,
        "inter": InterOpStrategy,
        "inter_th": InterTheoreticalStrategy,
        "hybrid": HybridStrategy,
        "liger": InterleavedStrategy,
    }


#: Public names of the available strategies.
STRATEGIES: Tuple[str, ...] = ("intra", "inter", "inter_th", "hybrid", "liger")


def make_strategy(
    name: str,
    model: ModelSpec,
    node: NodeSpec,
    *,
    profiler: Optional[OpProfiler] = None,
    policy: Optional[str] = None,
    **kwargs,
) -> ParallelStrategy:
    """Instantiate a strategy by name.

    ``policy`` selects the Liger operator-scheduling policy (see
    :mod:`repro.core.policy`); it applies to ``"liger"`` only and merges
    into the strategy's :class:`~repro.core.config.LigerConfig` (so it can
    be combined with an explicit ``config=`` keyword).
    """
    registry = _strategy_registry()
    if name not in registry:
        raise ConfigError(f"unknown strategy {name!r}; choose from {STRATEGIES}")
    if policy is not None:
        if name != "liger":
            raise ConfigError(
                f"policy={policy!r} selects a Liger scheduling policy; "
                f"strategy {name!r} does not schedule with policies"
            )
        from repro.core.config import LigerConfig

        config = kwargs.get("config")
        if config is None:
            kwargs["config"] = LigerConfig(policy=policy)
        else:
            kwargs["config"] = dataclasses.replace(config, policy=policy)
    if profiler is None and name != "liger":
        # Baselines profile with NCCL library defaults.  Liger builds its
        # own profiler so its config governs the reduced NCCL footprint
        # (§3.5 mitigation) and the profiler-memo toggle — pre-building one
        # here would silently override both flags.
        profiler = OpProfiler(node, nccl=NcclConfig())
    return registry[name](model, node, profiler=profiler, **kwargs)


def serve(
    model: ModelSpec,
    node: NodeSpec,
    *,
    strategy: str = "liger",
    arrival_rate: float = 4.0,
    num_requests: int = 64,
    batch_size: int = 2,
    workload: str = "general",
    policy: Optional[str] = None,
    seq_range: Tuple[int, int] = (16, 128),
    context_len: int = 16,
    seed: int = 0,
    record_trace: bool = False,
    check_memory: bool = True,
    config: Optional[ServingConfig] = None,
    fault_plan=None,
    resilience=None,
    overload=None,
    deadline_us: Optional[float] = None,
    observability=None,
    **strategy_kwargs,
) -> ServingResult:
    """Serve a synthetic workload and return latency/throughput metrics.

    Parameters mirror the paper's experimental setup: ``workload="general"``
    gives the §4.2 random traces (seq 16–128), ``workload="generative"`` the
    §4.3 decode steps (context 16, batch 32 by default).

    ``policy`` picks the Liger operator-scheduling policy (see
    :func:`~repro.core.policy.policy_names`); ``None`` keeps the strategy's
    configured default, and non-``"liger"`` strategies reject it.

    ``config`` (a :class:`~repro.serving.session.ServingConfig`) bundles the
    cross-cutting subsystems in one object; it is mutually exclusive with
    the individual ``fault_plan``/``resilience``/``overload``/
    ``observability`` keywords below, and when given it also governs
    ``record_trace``.

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`) injects faults
    into the run and arms the recovery layer; ``resilience`` (a
    :class:`~repro.faults.resilience.ResilienceConfig`) tunes its policy.
    When both are ``None`` no fault machinery is constructed and the run is
    bit-identical to one without fault support.

    ``overload`` (a :class:`~repro.serving.overload.OverloadConfig`) arms
    admission control, deadline enforcement, and KV-cache accounting in
    front of the strategy; ``deadline_us`` stamps every request with an
    arrival-relative deadline (it implies a default ``OverloadConfig``
    when ``overload`` is not given).

    ``observability`` (a :class:`~repro.obs.Observability`) attaches the
    event bus, metrics registry, and span builder to the run; afterwards
    export with ``observability.save_prometheus(...)`` and
    ``observability.save_merged_trace(..., trace=result.trace)``.  When
    ``None``, nothing is published and the run is bit-identical to one
    without the observability subsystem.
    """
    if deadline_us is not None:
        from repro.serving.overload import OverloadConfig

        if config is not None:
            raise ConfigError(
                "deadline_us cannot be combined with config=; set "
                "default_deadline_us on the config's OverloadConfig instead"
            )
        if overload is None:
            overload = OverloadConfig(default_deadline_us=deadline_us)
        elif overload.default_deadline_us is None:
            overload = dataclasses.replace(
                overload, default_deadline_us=deadline_us
            )
    strat = make_strategy(strategy, model, node, policy=policy, **strategy_kwargs)
    if workload == "general":
        batches = general_trace(
            num_requests, arrival_rate, batch_size, seq_range=seq_range, seed=seed
        )
    elif workload == "generative":
        batches = generative_trace(
            num_requests,
            arrival_rate,
            batch_size=batch_size,
            context_len=context_len,
            seed=seed,
        )
    else:
        raise ConfigError(f"unknown workload {workload!r}")
    server = Server(
        model,
        node,
        strat,
        config=config,
        record_trace=record_trace,
        check_memory=check_memory,
        fault_plan=fault_plan,
        resilience=resilience,
        overload=overload,
        observability=observability,
    )
    return server.run(batches)
