"""Exception hierarchy for the Liger reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single type at an API boundary.  The subtypes mirror the subsystems:
simulator faults (deadlock, protocol misuse), configuration mistakes, and
scheduling failures (the condition Liger's contention factors exist to avoid).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "DeadlockError",
    "StreamProtocolError",
    "OutOfMemoryError",
    "SchedulingError",
    "PartitionError",
    "ProfileMissingError",
    "FaultError",
    "RetryExhaustedError",
    "IncompleteRequestError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value (negative sizes, bad enum, ...)."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while work was still pending.

    Raised by :meth:`repro.sim.engine.Engine.run` when streams still hold
    unexecuted commands but no future event can make progress — typically an
    event-wait cycle, or a collective whose peer rank never launched.
    """


class StreamProtocolError(SimulationError):
    """A CUDA-like API was misused (e.g. waiting on an unrecorded event)."""


class OutOfMemoryError(SimulationError):
    """A device-memory reservation exceeded HBM capacity.

    Raised by :class:`repro.sim.memory.DeviceMemory` when weights +
    activations + KV cache no longer fit — the simulated analogue of a CUDA
    OOM during serving.
    """


class SchedulingError(ReproError, RuntimeError):
    """Liger's scheduler produced (or detected) an invalid schedule.

    The paper calls the condition where the secondary kernel subset outlives
    the primary subset a *scheduling failure* (§3.5); the scheduler raises
    this when asked to validate a plan that violates Principle 1.
    """


class PartitionError(ReproError, ValueError):
    """A model cannot be partitioned as requested (heads not divisible, ...)."""


class ProfileMissingError(ReproError, KeyError):
    """A kernel duration or contention factor was requested before profiling."""


class FaultError(SimulationError):
    """An injected fault fired on the path that observed it.

    Raised by :meth:`repro.faults.injector.FaultInjector.check_launch` when a
    transient launch-failure window is active — the simulated analogue of a
    ``cudaErrorLaunchFailure`` that the retry layer is expected to absorb.
    """


class RetryExhaustedError(FaultError):
    """A batch exhausted its retry budget against a persistent fault.

    Raised by the recovery layer (:mod:`repro.faults.resilience`) when a batch
    submission keeps hitting :class:`FaultError` past ``max_retries`` and the
    configuration forbids shedding it.
    """


class IncompleteRequestError(ReproError, RuntimeError):
    """A per-request result was read before the request reached COMPLETED.

    Raised by :attr:`repro.serving.request.Request.latency` (and the chat
    equivalents) when the request is still pending, or finished in a
    non-completed terminal state (``SHED``/``TIMED_OUT``) — those requests
    have no latency to report.
    """
