"""Contention-factor profiling (§3.5).

The conventional profile is taken under no load; scheduling with those
numbers under overlap under-estimates durations and can let the secondary
kernel subset outlive the primary one — a *scheduling failure*.  Liger's
strategy, reproduced here:

1. Only lengthy computation kernels (the big GEMMs) and communication
   kernels are profiled concurrently — the full cross product of all kernels
   is "an unacceptable search space".
2. Each (compute, comm) pair is co-run over a grid of input sizes; the
   observed slowdown is ``measured / no-load`` per kernel.
3. The **maximum** observed factor per kernel class is kept.  The scheduler
   keeps using no-load durations for the *primary* subset and scales only
   *subsequent-batch* kernels by these maxima, so the secondary subset's
   estimated duration is pessimistic and "will never exceed that of the
   primary subset" (Principle 1) — at the cost of some overlap.

Because the simulator's contention is emergent (:mod:`repro.sim.contention`),
this module performs real measurements: it launches kernel pairs on a scratch
machine with the node's contention model and reads the stretch out of the
trace, exactly as the authors did with CUDA events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.hw.devices import NodeSpec
from repro.models.ops import OpDesc
from repro.models.specs import ModelSpec
from repro.models.transformer import layer_ops
from repro.profiling.profiler import OpProfiler
from repro.sim.contention import ContentionModel, default_contention_for
from repro.sim.engine import Engine
from repro.sim.gpu import Machine
from repro.sim.kernel import Kernel, KernelKind
from repro.sim.tracing import Trace

__all__ = ["ContentionFactors", "ContentionProfiler"]


@dataclass(frozen=True)
class ContentionFactors:
    """Maximum observed slowdowns, by kernel class.

    ``compute`` scales compute kernels scheduled from subsequent batches;
    ``comm`` scales communication kernels.  ``samples`` keeps the raw grid
    for inspection (pair label → (compute slowdown, comm slowdown)).
    """

    compute: float
    comm: float
    samples: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.compute < 1.0 or self.comm < 1.0:
            raise ConfigError("contention factors cannot be < 1.0")

    def for_kind(self, kind: KernelKind) -> float:
        """The factor applied to kernels of ``kind``."""
        return self.comm if kind is KernelKind.COMM else self.compute

    @property
    def overall(self) -> float:
        """Single pessimistic factor (what the paper quotes: 1.10 / 1.15)."""
        return max(self.compute, self.comm)


class ContentionProfiler:
    """Measures contention factors by co-running kernel pairs on the sim."""

    def __init__(
        self,
        node: NodeSpec,
        profiler: OpProfiler,
        *,
        contention: Optional[ContentionModel] = None,
    ) -> None:
        self.node = node
        self.profiler = profiler
        self.contention = contention or default_contention_for(node.name)

    # ------------------------------------------------------------------
    def lengthy_kernel_grid(
        self,
        model: ModelSpec,
        *,
        batch_sizes: Sequence[int] = (2, 8),
        seq_lens: Sequence[int] = (16, 128),
    ) -> List[Tuple[OpDesc, OpDesc]]:
        """(compute, comm) pairs worth profiling: big GEMMs × all-reduces."""
        tp = self.node.num_gpus
        pairs: List[Tuple[OpDesc, OpDesc]] = []
        for b in batch_sizes:
            for s in seq_lens:
                ops = layer_ops(model, b, s, tp, layer=0)
                # Pairs are GEMM × ring all-reduce (§3.5); MoE layers also
                # carry all-to-alls, which measure_pair does not co-run.
                comms = [o for o in ops if o.op == "all_reduce"]
                gemms = sorted(
                    (o for o in ops if o.op == "gemm"),
                    key=self.profiler.duration,
                    reverse=True,
                )[:2]  # the lengthy ones only (§3.5)
                for g in gemms:
                    for c in comms[:1]:
                        pairs.append((g, c))
        return pairs

    def measure_pair(self, compute_op: OpDesc, comm_op: OpDesc) -> Tuple[float, float]:
        """Co-run one pair; return (compute slowdown, comm slowdown).

        The compute kernel runs on every GPU (as it would under tensor
        parallelism) on stream 0; the collective runs across all GPUs on
        stream 1.  Durations are repeated/matched so the two stay overlapped
        for the whole window, giving the *worst-case* (maximal) interference
        — which is what the factor must bound.
        """
        if comm_op.op != "all_reduce":
            raise ConfigError("contention profiling pairs use all-reduce comm ops")
        machine = Machine(
            self.node, Engine(), contention=self.contention, trace=Trace()
        )
        participants = list(range(self.node.num_gpus))
        compute_noload = self.profiler.duration(compute_op)
        comm_noload = self.profiler.duration(comm_op)
        if compute_noload <= 0 or comm_noload <= 0:
            raise ConfigError("degenerate kernel durations in contention pair")

        # Repeat each side to cover the longer of the two no-load windows,
        # keeping both resident together from t=0.
        window = max(compute_noload, comm_noload)
        n_compute = max(1, round(window / compute_noload))
        n_comm = max(1, round(window / comm_noload))

        for gpu in participants:
            s0 = machine.gpu(gpu).stream("compute")
            for i in range(n_compute):
                machine.launch(
                    s0,
                    Kernel(
                        name=f"prof_compute_{i}@g{gpu}",
                        kind=KernelKind.COMPUTE,
                        duration=compute_noload,
                        occupancy=self.profiler.occupancy(compute_op),
                        memory_intensity=self.profiler.memory_intensity(compute_op),
                    ),
                    available_at=0.0,
                )
        for i in range(n_comm):
            coll = self.profiler.collectives.make_allreduce(
                comm_op.comm_bytes, participants, name=f"prof_ar_{i}"
            )
            for gpu in participants:
                s1 = machine.gpu(gpu).stream("comm")
                machine.launch(s1, coll.members[gpu], available_at=0.0)
        machine.run()

        assert machine.trace is not None
        comp_slow = max(
            r.slowdown
            for r in machine.trace.rows
            if r.kind is not KernelKind.COMM
        )
        comm_slow = max(
            r.slowdown for r in machine.trace.rows if r.kind is KernelKind.COMM
        )
        return comp_slow, comm_slow

    def profile(
        self,
        model: ModelSpec,
        *,
        batch_sizes: Sequence[int] = (2, 8),
        seq_lens: Sequence[int] = (16, 128),
        margin: float = 1.02,
    ) -> ContentionFactors:
        """Run the grid and return the maximum factors (× a small margin).

        ``margin`` covers grid points not profiled — the paper's factors
        (1.10 V100, 1.15 A100) are similarly rounded up.
        """
        samples: Dict[str, Tuple[float, float]] = {}
        max_compute = 1.0
        max_comm = 1.0
        for compute_op, comm_op in self.lengthy_kernel_grid(
            model, batch_sizes=batch_sizes, seq_lens=seq_lens
        ):
            comp_slow, comm_slow = self.measure_pair(compute_op, comm_op)
            samples[f"{compute_op.name}×{comm_op.name}"] = (comp_slow, comm_slow)
            max_compute = max(max_compute, comp_slow)
            max_comm = max(max_comm, comm_slow)
        return ContentionFactors(
            compute=max_compute * margin,
            comm=max_comm * margin,
            samples=samples,
        )
