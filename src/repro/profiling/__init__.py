"""Offline profiling: no-load kernel durations and contention factors (§3.5).

The preprocessing phase's offline procedure (Fig. 5): collect runtime traces
and contention factors once, before deployment.
"""

from repro.profiling.contention_profiler import ContentionFactors, ContentionProfiler
from repro.profiling.profiler import OpProfiler, op_key

__all__ = ["OpProfiler", "op_key", "ContentionFactors", "ContentionProfiler"]
