"""Offline kernel profiling (the preprocessing phase's offline procedure).

Liger profiles every kernel's no-load duration before deployment and feeds
those durations to the scheduler (Fig. 5; §3.2's function wrappers carry
"the kernel duration").  In this reproduction the analytical cost model
*plays the role of the hardware* (DESIGN.md §2), so a "measurement" of a
solo kernel equals the cost-model value by construction; the profiler's jobs
are therefore (a) to be the single component that owns the
op → (duration, occupancy, memory-intensity) mapping, with caching keyed on
op identity, and (b) to provide :meth:`OpProfiler.measure_solo`, which
*actually executes* the kernel on a scratch machine and reads the trace —
used by tests to prove the executor honours profiled durations, and by the
contention profiler as the no-load reference.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.hw.devices import NodeSpec
from repro.models.costs import KernelCostModel
from repro.models.ops import OpDesc
from repro.sim.contention import NullContention
from repro.sim.engine import Engine
from repro.sim.gpu import Machine
from repro.sim.interconnect import CollectiveCostModel, NcclConfig
from repro.sim.kernel import Kernel
from repro.sim.tracing import Trace

__all__ = ["OpProfiler", "op_key"]


def op_key(op: OpDesc) -> Tuple:
    """A hashable identity for caching profiled values.

    Two ops with the same flavour and shape share a profile — exactly how a
    real profile database is keyed (kernel + launch configuration).
    """
    if op.op == "gemm":
        return ("gemm", op.gemm_shape)
    if op.op == "attention":
        return (
            "attention",
            op.attn_batch,
            op.attn_q_len,
            op.attn_ctx_len,
            op.attn_heads,
            op.attn_head_dim,
        )
    if op.op in ("elementwise", "embed", "kv_append"):
        return (op.op, op.elems, op.rw_factor)
    if op.op == "all_reduce":
        return ("all_reduce", op.comm_bytes)
    if op.op == "all_to_all":
        return ("all_to_all", op.comm_bytes)
    if op.op == "p2p":
        return ("p2p", op.comm_bytes, op.p2p_src, op.p2p_dst)
    raise ConfigError(f"unknown op flavour {op.op!r}")


class OpProfiler:
    """Profiled durations and footprints for a (node, model-config) pair.

    Parameters
    ----------
    node:
        Testbed; determines the device cost model and collective topology.
    cost_model:
        Override the per-device kernel cost model.
    nccl:
        Communication-library configuration.  Liger passes the *reduced*
        config (§3.5); baselines profile with NCCL defaults.
    participants:
        Ranks collectives run over (defaults to all GPUs of the node).
    memoize:
        Cache per-op occupancy/memory-intensity lookups (the duration
        profile database itself is always cached — it *is* the profile).
        The perf harness's cache-off arm disables this to measure the
        pre-memo hot path; results are bit-identical either way.
    """

    def __init__(
        self,
        node: NodeSpec,
        *,
        cost_model: Optional[KernelCostModel] = None,
        nccl: Optional[NcclConfig] = None,
        participants: Optional[Sequence[int]] = None,
        memoize: bool = True,
    ) -> None:
        self.node = node
        self.cost_model = cost_model or KernelCostModel(node.gpu)
        self.nccl = nccl or NcclConfig()
        self.collectives = CollectiveCostModel(node.topology, self.nccl)
        self.participants = (
            list(participants) if participants is not None else list(range(node.num_gpus))
        )
        self.memoize = memoize
        self._cache: Dict[Tuple, float] = {}
        self._occ_cache: Dict[Tuple, float] = {}
        self._mem_cache: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------
    # The profile database
    # ------------------------------------------------------------------
    def duration(self, op: OpDesc) -> float:
        """No-load duration (µs) of one op, cached."""
        key = op_key(op)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        if op.op == "all_reduce":
            value = self.collectives.allreduce_duration(op.comm_bytes, self.participants)
        elif op.op == "all_to_all":
            value = self.collectives.alltoall_duration(op.comm_bytes, self.participants)
        elif op.op == "p2p":
            value = self.collectives.p2p_duration(op.comm_bytes, op.p2p_src, op.p2p_dst)
        else:
            value = self.cost_model.duration(op)
        self._cache[key] = value
        return value

    def occupancy(self, op: OpDesc) -> float:
        """SM footprint of the op's kernel, memoized when enabled."""
        if self.memoize:
            key = op_key(op)
            hit = self._occ_cache.get(key)
            if hit is not None:
                return hit
        if op.is_comm:
            # Ring and all-to-all collectives carry the full NCCL channel
            # footprint; p2p copies ride the copy engines.
            value = (
                self.nccl.occupancy
                if op.op in ("all_reduce", "all_to_all")
                else min(self.nccl.occupancy, 0.04)
            )
        else:
            value = self.cost_model.occupancy(op)
        if self.memoize:
            self._occ_cache[key] = value
        return value

    def memory_intensity(self, op: OpDesc) -> float:
        """HBM footprint of the op's kernel, memoized when enabled."""
        if self.memoize:
            key = op_key(op)
            hit = self._mem_cache.get(key)
            if hit is not None:
                return hit
        if op.is_comm:
            value = self.collectives._comm_memory_intensity(op.comm_bytes)
        else:
            value = self.cost_model.memory_intensity(op)
        if self.memoize:
            self._mem_cache[key] = value
        return value

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Actual measurement on a scratch machine
    # ------------------------------------------------------------------
    def measure_solo(self, op: OpDesc) -> float:
        """Execute the op alone on a scratch machine; return measured µs.

        For compute ops this runs one kernel on GPU 0; for collectives it
        runs the member group across ``participants``.  With nothing else
        resident the measurement must equal :meth:`duration` — the test
        suite asserts this (executor honours profiles).
        """
        machine = Machine(
            self.node, Engine(), contention=NullContention(), trace=Trace()
        )
        if op.op == "all_reduce":
            coll = self.collectives.make_allreduce(op.comm_bytes, self.participants)
            for gpu in self.participants:
                stream = machine.gpu(gpu).stream("profile")
                machine.launch(stream, coll.members[gpu], available_at=0.0)
        elif op.op == "all_to_all":
            coll = self.collectives.make_all_to_all(op.comm_bytes, self.participants)
            for gpu in self.participants:
                stream = machine.gpu(gpu).stream("profile")
                machine.launch(stream, coll.members[gpu], available_at=0.0)
        elif op.op == "p2p":
            coll = self.collectives.make_p2p(op.comm_bytes, op.p2p_src, op.p2p_dst)
            for gpu in (op.p2p_src, op.p2p_dst):
                stream = machine.gpu(gpu).stream("profile")
                machine.launch(stream, coll.members[gpu], available_at=0.0)
        else:
            kernel = Kernel(
                name=f"profile:{op.name}",
                kind=op.kind,
                duration=self.cost_model.duration(op),
                occupancy=self.occupancy(op),
                memory_intensity=self.memory_intensity(op),
            )
            machine.launch(machine.gpu(0).stream("profile"), kernel, available_at=0.0)
        machine.run()
        assert machine.trace is not None
        return max(r.duration for r in machine.trace.rows)
