"""Typed serving events and the bus that carries them.

Every layer that makes a decision the final counters used to swallow —
admission, staging, dispatch, preemption, shedding, deadline expiry, retry,
strategy downgrade/upgrade, breaker transitions, Principle-1 violations —
publishes a typed event here instead of (only) bumping an aggregate.  The
subscribers are the metrics registry (:mod:`repro.obs.metrics`), which
re-derives the aggregate counters, and the span builder
(:mod:`repro.obs.spans`), which reconstructs per-request timelines.

Zero-overhead contract: no layer constructs an event unless a bus is
attached (`if self.bus is not None`), and a server built without
observability carries no bus — the publish sites compile down to one
attribute check on paths that already branch.

All timestamps are simulation microseconds (`Engine.now`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, ClassVar, Dict, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Event",
    "RequestsAdmitted",
    "RequestsShed",
    "RequestsTimedOut",
    "BatchStaged",
    "BatchDispatched",
    "BatchPreempted",
    "BatchCompleted",
    "RetryScheduled",
    "BreakerOpened",
    "BreakerClosed",
    "StrategyDowngraded",
    "StrategyUpgraded",
    "Principle1Violation",
    "NodeHealthChanged",
    "RequestsFailedOver",
    "NodeCrashed",
    "NodeRecovered",
    "SloBurnRateAlert",
    "SloAlertResolved",
    "EventBus",
]


@dataclass(frozen=True)
class Event:
    """Base event: a simulation timestamp plus a stable ``kind`` string."""

    time_us: float

    #: Stable machine-readable discriminator (also the Chrome-trace name).
    kind: ClassVar[str] = "event"

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly rendering (kind + every field)."""
        out: Dict[str, object] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out


# ----------------------------------------------------------------------
# Request lifecycle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RequestsAdmitted(Event):
    """Requests accepted into the serving pipeline at their arrival."""

    kind: ClassVar[str] = "admitted"
    batch_id: int = -1
    rids: Tuple[int, ...] = ()
    #: Each member's own arrival time (its span starts here, not at the
    #: batch's formation instant).
    arrivals_us: Tuple[float, ...] = ()

    @staticmethod
    def from_batch(batch, time_us: float) -> "RequestsAdmitted":
        return RequestsAdmitted(
            time_us=time_us,
            batch_id=batch.batch_id,
            rids=tuple(r.rid for r in batch.requests),
            arrivals_us=tuple(r.arrival for r in batch.requests),
        )


@dataclass(frozen=True)
class RequestsShed(Event):
    """Requests dropped without service (terminal ``SHED``)."""

    kind: ClassVar[str] = "shed"
    batch_id: int = -1
    rids: Tuple[int, ...] = ()
    #: Which mechanism dropped them: ``"admission"`` (bounded queue),
    #: ``"breaker"`` (fail-fast while open), ``"collateral"`` (batchmates of
    #: an expired request), or ``"retry-exhausted"`` (recovery layer).
    where: str = "admission"
    #: How many of them carried a deadline (they count against SLO).
    slo_tracked: int = 0

    @staticmethod
    def from_requests(
        requests: Sequence, time_us: float, *, batch_id: int, where: str
    ) -> "RequestsShed":
        return RequestsShed(
            time_us=time_us,
            batch_id=batch_id,
            rids=tuple(r.rid for r in requests),
            where=where,
            slo_tracked=sum(1 for r in requests if r.deadline is not None),
        )


@dataclass(frozen=True)
class RequestsTimedOut(Event):
    """Requests whose deadline expired before service (terminal ``TIMED_OUT``)."""

    kind: ClassVar[str] = "timed-out"
    batch_id: int = -1
    rids: Tuple[int, ...] = ()
    #: Where the expiry was observed (``"pending"``, ``"staged"``, ...).
    where: str = "pending"
    slo_tracked: int = 0

    @staticmethod
    def from_requests(
        requests: Sequence, time_us: float, *, batch_id: int, where: str
    ) -> "RequestsTimedOut":
        return RequestsTimedOut(
            time_us=time_us,
            batch_id=batch_id,
            rids=tuple(r.rid for r in requests),
            where=where,
            slo_tracked=sum(1 for r in requests if r.deadline is not None),
        )


# ----------------------------------------------------------------------
# Batch pipeline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchStaged(Event):
    """A batch KV-charged and parked on the staged runway."""

    kind: ClassVar[str] = "staged"
    batch_id: int = -1
    size: int = 0


@dataclass(frozen=True)
class BatchDispatched(Event):
    """A batch handed to the (recovery-wrapped) strategy."""

    kind: ClassVar[str] = "dispatched"
    batch_id: int = -1
    rids: Tuple[int, ...] = ()
    phase: str = "prefill"
    #: Exact per-member queue wait: own arrival → this dispatch (µs).
    queue_waits_us: Tuple[float, ...] = ()
    #: False for a re-dispatch of already-served requests (lifecycle decode
    #: iterations) — queue-wait derivations skip those.
    first: bool = True

    @staticmethod
    def from_batch(batch, time_us: float, *, first: bool = True) -> "BatchDispatched":
        return BatchDispatched(
            time_us=time_us,
            batch_id=batch.batch_id,
            rids=tuple(r.rid for r in batch.requests),
            phase=batch.phase.value,
            queue_waits_us=tuple(time_us - r.arrival for r in batch.requests),
            first=first,
        )


@dataclass(frozen=True)
class BatchPreempted(Event):
    """A staged batch evicted (KV released, requeued) under pressure."""

    kind: ClassVar[str] = "preempted"
    batch_id: int = -1
    size: int = 0


@dataclass(frozen=True)
class BatchCompleted(Event):
    """A batch retired by the strategy.

    ``completed_rids`` are the members that reached the terminal
    ``COMPLETED`` state at this instant; the lifecycle server publishes
    intermediate prefill/decode completions with members still mid-flight
    (``completed_rids`` ⊂ ``rids``).
    """

    kind: ClassVar[str] = "completed"
    batch_id: int = -1
    rids: Tuple[int, ...] = ()
    completed_rids: Tuple[int, ...] = ()
    #: Arrival→completion latency per completed member (µs).
    latencies_us: Tuple[float, ...] = ()
    #: Of the completed members with a deadline: tracked / met / missed.
    slo_tracked: int = 0
    slo_met: int = 0
    deadline_misses: int = 0

    @staticmethod
    def from_batch(batch, time_us: float) -> "BatchCompleted":
        tracked = [r for r in batch.requests if r.deadline is not None]
        met = sum(1 for r in tracked if r.completion <= r.deadline)
        return BatchCompleted(
            time_us=time_us,
            batch_id=batch.batch_id,
            rids=tuple(r.rid for r in batch.requests),
            completed_rids=tuple(r.rid for r in batch.requests),
            latencies_us=tuple(time_us - r.arrival for r in batch.requests),
            slo_tracked=len(tracked),
            slo_met=met,
            deadline_misses=len(tracked) - met,
        )


# ----------------------------------------------------------------------
# Faults, recovery, and backpressure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryScheduled(Event):
    """A launch-failed batch backing off before its next attempt."""

    kind: ClassVar[str] = "retry"
    batch_id: int = -1
    attempt: int = 0
    delay_us: float = 0.0


@dataclass(frozen=True)
class BreakerOpened(Event):
    """The backpressure circuit breaker tripped open."""

    kind: ClassVar[str] = "breaker-open"
    reason: str = ""


@dataclass(frozen=True)
class BreakerClosed(Event):
    """The backpressure circuit breaker closed (queue drained)."""

    kind: ClassVar[str] = "breaker-closed"
    reason: str = ""


@dataclass(frozen=True)
class StrategyDowngraded(Event):
    """The recovery layer routed the run onto its fallback strategy."""

    kind: ClassVar[str] = "downgrade"
    strategy: str = ""
    reason: str = ""
    #: True when the trigger was overload backpressure, not Principle-1.
    overload: bool = False


@dataclass(frozen=True)
class StrategyUpgraded(Event):
    """The recovery probe restored the primary strategy."""

    kind: ClassVar[str] = "upgrade"
    strategy: str = ""
    reason: str = ""


@dataclass(frozen=True)
class Principle1Violation(Event):
    """An executed round whose secondary subset outlived its window (§3.5)."""

    kind: ClassVar[str] = "principle1-violation"
    round_index: int = -1
    overshoot_us: float = 0.0


# ----------------------------------------------------------------------
# Cluster: replica health and failover
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodeHealthChanged(Event):
    """The router flipped a replica's health state."""

    kind: ClassVar[str] = "node-health"
    node: int = -1
    healthy: bool = True
    #: What the probe saw: ``"crashed"``, ``"partitioned"``, ``"probe ok"``.
    reason: str = ""


@dataclass(frozen=True)
class RequestsFailedOver(Event):
    """In-flight requests re-dispatched from a failed replica to another."""

    kind: ClassVar[str] = "failover"
    batch_id: int = -1
    rids: Tuple[int, ...] = ()
    from_node: int = -1
    to_node: int = -1
    #: Which re-dispatch this is for the batch (1 = first failover).
    attempt: int = 0


@dataclass(frozen=True)
class NodeCrashed(Event):
    """A replica process died (fault injection or chaos plan)."""

    kind: ClassVar[str] = "node-crash"
    node: int = -1
    #: Monotonic restart count for the replica (0 = first life).
    incarnation: int = 0
    inflight: int = 0


@dataclass(frozen=True)
class NodeRecovered(Event):
    """A crashed replica came back with a fresh incarnation."""

    kind: ClassVar[str] = "node-recover"
    node: int = -1
    incarnation: int = 0
    down_us: float = 0.0


# ----------------------------------------------------------------------
# SLO burn-rate alerting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloBurnRateAlert(Event):
    """A multi-window burn-rate alert fired for one policy/severity.

    Burn rate is ``error_rate / (1 - target)``: 1.0 means the error budget
    is being spent exactly at the rate that exhausts it at the SLO horizon;
    the fast-window threshold (~10x) means the budget is gone within hours
    of sim time, which is the page-now signal.
    """

    kind: ClassVar[str] = "slo-burn-alert"
    policy: str = ""
    objective: str = ""
    severity: str = "fast"
    burn_long: float = 0.0
    burn_short: float = 0.0
    threshold: float = 0.0
    window_us: float = 0.0

    def describe(self) -> str:
        """One-line human-readable summary for alert tables and logs."""
        return (
            f"{self.policy} {self.severity}-burn: long={self.burn_long:.1f}x "
            f"short={self.burn_short:.1f}x (threshold {self.threshold:.1f}x)"
        )


@dataclass(frozen=True)
class SloAlertResolved(Event):
    """A previously firing burn-rate alert dropped back under threshold."""

    kind: ClassVar[str] = "slo-alert-resolved"
    policy: str = ""
    severity: str = "fast"
    burn_short: float = 0.0


# ----------------------------------------------------------------------
# The bus
# ----------------------------------------------------------------------
class EventBus:
    """Synchronous publish/subscribe fan-out for :class:`Event` instances.

    Publishing is a plain loop over subscribers on the simulation's control
    path — no queueing, no threads — so event order equals decision order
    and the bus adds no events to the engine.  With ``retain=True`` (the
    default, and what the exporters need) every published event is also
    appended to :attr:`events`.
    """

    def __init__(self, *, retain: bool = True) -> None:
        self.events: List[Event] = []
        self._retain = retain
        self._all: List[Callable[[Event], None]] = []
        self._by_type: Dict[Type[Event], List[Callable[[Event], None]]] = {}

    def subscribe(
        self,
        fn: Callable[[Event], None],
        *,
        types: Optional[Sequence[Type[Event]]] = None,
    ) -> None:
        """Register ``fn``; with ``types`` it only sees those event classes."""
        if types is None:
            self._all.append(fn)
        else:
            for t in types:
                self._by_type.setdefault(t, []).append(fn)

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to every matching subscriber, in order."""
        if self._retain:
            self.events.append(event)
        for fn in self._all:
            fn(event)
        for fn in self._by_type.get(type(event), ()):
            fn(event)

    def of_kind(self, kind: str) -> List[Event]:
        """Retained events whose ``kind`` matches (requires ``retain=True``)."""
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)
