"""The ``trace`` CLI: serve a workload and export the merged timeline.

Usage::

    python -m repro trace --model OPT-30B --node v100 --strategy liger \\
        --rate 50 --requests 64 --out trace.json --metrics-out metrics.prom
    python -m repro trace --max-pending 16 --deadline-ms 50 --out t.json
    python -m repro trace --summarize t.json     # inspect an existing file

The run serves the workload with observability armed and the kernel trace
recorded, then writes the merged Chrome/Perfetto trace (request spans +
kernel slices + control instants on one timeline) and, optionally, the
Prometheus text exposition and the JSON metrics snapshot.  ``--summarize``
instead parses an existing merged trace and prints its per-class counts.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ConfigError
from repro.hw.devices import TESTBEDS
from repro.models.specs import MODELS
from repro.obs.export import validate_merged_trace
from repro.obs.observability import Observability
from repro.serving.api import STRATEGIES, serve

__all__ = ["main", "summarize_trace"]


def summarize_trace(path: str) -> str:
    """Parse an existing merged trace and render its per-class counts."""
    with open(path, "r", encoding="utf-8") as fh:
        obj = json.load(fh)
    counts = validate_merged_trace(obj)
    total = len(obj["traceEvents"])
    lines = [f"{path}: {total} event(s)"]
    lines.append(f"  kernel slices:    {counts['kernel']}")
    lines.append(f"  request spans:    {counts['span']}")
    lines.append(f"  control instants: {counts['instant']}")
    if counts["fault"]:
        lines.append(f"  fault windows:    {counts['fault']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point for ``python -m repro trace``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Serve a workload with observability armed and export "
        "the merged Perfetto timeline and metrics.",
    )
    parser.add_argument("--summarize", metavar="PATH",
                        help="summarize an existing merged trace and exit")
    parser.add_argument("--model", default="OPT-30B", choices=sorted(MODELS))
    parser.add_argument("--node", default="v100", choices=sorted(TESTBEDS))
    parser.add_argument("--gpus", type=int, default=4)
    parser.add_argument("--strategy", default="liger", choices=STRATEGIES)
    parser.add_argument("--workload", default="general",
                        choices=("general", "generative"))
    parser.add_argument("--rate", type=float, default=20.0,
                        help="arrival rate (requests/second)")
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="trace.json", metavar="PATH",
                        help="merged Chrome/Perfetto trace (default trace.json)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="Prometheus text exposition of the run's metrics")
    parser.add_argument("--snapshot-out", metavar="PATH",
                        help="JSON metrics snapshot (counters + samples)")
    parser.add_argument("--max-pending", type=int, default=None, metavar="N",
                        help="arm admission control with a queue of N requests")
    parser.add_argument("--admission", default="reject",
                        choices=("reject", "shed-oldest", "shed-by-deadline"))
    parser.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                        help="per-request deadline after arrival (ms)")
    args = parser.parse_args(argv)

    if args.summarize is not None:
        try:
            print(summarize_trace(args.summarize))
        except (OSError, json.JSONDecodeError, ConfigError) as exc:
            parser.error(f"cannot summarize {args.summarize}: {exc}")
        return 0

    overload = None
    if args.max_pending is not None or args.deadline_ms is not None:
        from repro.serving.overload import OverloadConfig

        overload = OverloadConfig(
            max_pending_requests=(
                args.max_pending if args.max_pending is not None else 64
            ),
            policy=args.admission,
            default_deadline_us=(
                args.deadline_ms * 1000.0
                if args.deadline_ms is not None else None
            ),
        )
    obs = Observability()
    result = serve(
        MODELS[args.model],
        TESTBEDS[args.node](args.gpus),
        strategy=args.strategy,
        workload=args.workload,
        arrival_rate=args.rate,
        num_requests=args.requests,
        batch_size=args.batch,
        seed=args.seed,
        record_trace=True,
        overload=overload,
        observability=obs,
    )
    print(result.summary())
    counts = obs.save_merged_trace(args.out, trace=result.trace)
    print(
        f"merged trace written to {args.out}: "
        f"{counts['kernel']} kernel slice(s), {counts['span']} request "
        f"span segment(s), {counts['instant']} control instant(s)"
    )
    if args.metrics_out:
        obs.save_prometheus(args.metrics_out)
        print(f"prometheus metrics written to {args.metrics_out}")
    if args.snapshot_out:
        obs.save_snapshot(args.snapshot_out)
        print(f"metrics snapshot written to {args.snapshot_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
