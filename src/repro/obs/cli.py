"""The ``trace`` CLI: serve a workload and export the merged timeline.

Usage::

    python -m repro trace --model OPT-30B --node v100 --strategy liger \\
        --rate 50 --requests 64 --out trace.json --metrics-out metrics.prom
    python -m repro trace --max-pending 16 --deadline-ms 50 --out t.json
    python -m repro trace --summarize t.json     # inspect an existing file

The run serves the workload with observability armed and the kernel trace
recorded, then writes the merged Chrome/Perfetto trace (request spans +
kernel slices + control instants on one timeline) and, optionally, the
Prometheus text exposition and the JSON metrics snapshot.  ``--summarize``
instead parses an existing merged trace and prints its per-class counts.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli import (
    overload_config_from_args,
    overload_parent,
    resolve_model_node,
    workload_parent,
)
from repro.errors import ConfigError
from repro.obs.export import validate_merged_trace
from repro.obs.observability import Observability
from repro.serving.api import serve
from repro.serving.session import ServingConfig

__all__ = ["main", "summarize_trace"]


def summarize_trace(path: str) -> str:
    """Parse an existing merged trace and render its per-class counts."""
    with open(path, "r", encoding="utf-8") as fh:
        obj = json.load(fh)
    counts = validate_merged_trace(obj)
    total = len(obj["traceEvents"])
    lines = [f"{path}: {total} event(s)"]
    lines.append(f"  kernel slices:    {counts['kernel']}")
    lines.append(f"  request spans:    {counts['span']}")
    lines.append(f"  control instants: {counts['instant']}")
    if counts["fault"]:
        lines.append(f"  fault windows:    {counts['fault']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point for ``python -m repro trace``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Serve a workload with observability armed and export "
        "the merged Perfetto timeline and metrics.",
        parents=[workload_parent(), overload_parent()],
    )
    parser.add_argument("--summarize", metavar="PATH",
                        help="summarize an existing merged trace and exit")
    parser.add_argument("--out", default="trace.json", metavar="PATH",
                        help="merged Chrome/Perfetto trace (default trace.json)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="Prometheus text exposition of the run's metrics")
    parser.add_argument("--snapshot-out", metavar="PATH",
                        help="JSON metrics snapshot (counters + samples)")
    args = parser.parse_args(argv)

    if args.summarize is not None:
        try:
            print(summarize_trace(args.summarize))
        except (OSError, json.JSONDecodeError, ConfigError) as exc:
            parser.error(f"cannot summarize {args.summarize}: {exc}")
        return 0

    obs = Observability()
    model, node = resolve_model_node(args)
    result = serve(
        model,
        node,
        strategy=args.strategy,
        workload=args.workload,
        policy=args.policy,
        arrival_rate=args.rate,
        num_requests=args.requests,
        batch_size=args.batch,
        seed=args.seed,
        config=ServingConfig(
            record_trace=True,
            overload=overload_config_from_args(args),
            observability=obs,
        ),
    )
    print(result.summary())
    counts = obs.save_merged_trace(args.out, trace=result.trace)
    print(
        f"merged trace written to {args.out}: "
        f"{counts['kernel']} kernel slice(s), {counts['span']} request "
        f"span segment(s), {counts['instant']} control instant(s)"
    )
    if args.metrics_out:
        obs.save_prometheus(args.metrics_out)
        print(f"prometheus metrics written to {args.metrics_out}")
    if args.snapshot_out:
        obs.save_snapshot(args.snapshot_out)
        print(f"metrics snapshot written to {args.snapshot_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
