"""Declarative SLOs evaluated into multi-window burn-rate alerts.

A :class:`SloPolicy` names an objective over the request stream:

* ``availability`` — fraction of terminal requests that completed (shed
  and timed-out requests are the errors);
* ``latency`` — fraction of completed requests under
  ``latency_threshold_ms``;
* ``deadline`` — fraction of deadline-carrying requests that met it.

The :class:`SloEngine` folds bus events into per-window good/bad tallies
(the window quantum is the telemetry store's ``window_us``) and, on every
heartbeat, evaluates each policy's **burn rate** — ``error_rate / (1 -
target)`` — over two spans per rule, Google-SRE style: the alert fires only
when both the *long* window (sustained) and the *short* window (still
happening) exceed the threshold.  A ``fast`` rule (short spans, high
threshold, ~10x) is the page; a ``slow`` rule (long spans, low threshold,
~2x) is the ticket.

Alerts are **observable decisions**, not logs: each fire publishes a typed
:class:`~repro.obs.events.SloBurnRateAlert` on the bus (so it lands in the
Prometheus export via ``repro_slo_alerts_total`` and on the merged
Perfetto timeline as an instant), and :meth:`SloEngine.under_fast_burn` is
the advisory signal the cluster router and the overload breaker consult.
The advisory only exists when policies are explicitly configured — a
default ``Observability()`` carries none, preserving the obs-on
bit-identity contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.events import (
    BatchCompleted,
    EventBus,
    RequestsShed,
    RequestsTimedOut,
    SloAlertResolved,
    SloBurnRateAlert,
)

if TYPE_CHECKING:
    from repro.obs.telemetry import TimeSeriesStore

__all__ = ["BurnRule", "SloPolicy", "SloEngine"]

_OBJECTIVES = ("availability", "latency", "deadline")


@dataclass(frozen=True)
class BurnRule:
    """One multi-window burn-rate alerting rule.

    ``long_windows``/``short_windows`` are span lengths in telemetry
    windows; ``threshold`` is the burn-rate multiple both spans must
    exceed for the alert to fire.
    """

    severity: str = "fast"
    long_windows: int = 6
    short_windows: int = 2
    threshold: float = 10.0

    def __post_init__(self) -> None:
        if self.long_windows < 1 or self.short_windows < 1:
            raise ConfigError("burn-rule windows must be >= 1")
        if self.short_windows > self.long_windows:
            raise ConfigError("short window cannot exceed the long window")
        if self.threshold <= 0:
            raise ConfigError("burn threshold must be positive")


@dataclass(frozen=True)
class SloPolicy:
    """A declarative service-level objective with its alerting rules."""

    name: str
    objective: str = "availability"
    #: Target good fraction, e.g. 0.95 = at most 5% error budget.
    target: float = 0.95
    #: Required for ``objective="latency"``: the good/bad cut (ms).
    latency_threshold_ms: Optional[float] = None
    fast: BurnRule = field(default_factory=lambda: BurnRule("fast", 6, 2, 10.0))
    slow: BurnRule = field(default_factory=lambda: BurnRule("slow", 24, 6, 2.0))

    def __post_init__(self) -> None:
        if self.objective not in _OBJECTIVES:
            raise ConfigError(
                f"objective must be one of {_OBJECTIVES}, got {self.objective!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigError("target must be in (0, 1)")
        if self.objective == "latency" and self.latency_threshold_ms is None:
            raise ConfigError("latency objective requires latency_threshold_ms")

    @property
    def rules(self) -> Tuple[BurnRule, ...]:
        return (self.fast, self.slow)


class _Tally:
    """Good/bad counts for one policy in one window."""

    __slots__ = ("good", "bad")

    def __init__(self) -> None:
        self.good = 0
        self.bad = 0


class SloEngine:
    """Folds bus events into windowed tallies and evaluates burn rates."""

    def __init__(
        self,
        policies: Sequence[SloPolicy],
        *,
        bus: EventBus,
        store: "TimeSeriesStore",
    ) -> None:
        names = [p.name for p in policies]
        if len(set(names)) != len(names):
            raise ConfigError("SLO policy names must be unique")
        self.policies: Tuple[SloPolicy, ...] = tuple(policies)
        self.store = store
        self.bus = bus
        self.window_us = store.window_us
        #: policy name -> window index -> tally (bounded by the ring size).
        self._tallies: Dict[str, Dict[int, _Tally]] = {p.name: {} for p in policies}
        self._max_windows = store.max_windows
        #: (policy, severity) -> the alert currently firing.
        self._active: Dict[Tuple[str, str], SloBurnRateAlert] = {}
        #: Every alert ever fired, in order.
        self.alerts: List[SloBurnRateAlert] = []
        self._last_evaluated = -1
        bus.subscribe(
            self._on_event, types=[BatchCompleted, RequestsShed, RequestsTimedOut]
        )

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def _tally(self, policy: SloPolicy, index: int) -> _Tally:
        per_window = self._tallies[policy.name]
        tally = per_window.get(index)
        if tally is None:
            tally = per_window[index] = _Tally()
            if len(per_window) > self._max_windows:
                del per_window[min(per_window)]
        return tally

    def _on_event(self, event) -> None:
        index = int(event.time_us // self.window_us)
        for policy in self.policies:
            good, bad = self._classify(policy, event)
            if good or bad:
                tally = self._tally(policy, index)
                tally.good += good
                tally.bad += bad

    @staticmethod
    def _classify(policy: SloPolicy, event) -> Tuple[int, int]:
        """(good, bad) contribution of one event under one policy."""
        if policy.objective == "availability":
            if isinstance(event, BatchCompleted):
                return len(event.completed_rids), 0
            if isinstance(event, (RequestsShed, RequestsTimedOut)):
                return 0, len(event.rids)
        elif policy.objective == "latency":
            if isinstance(event, BatchCompleted):
                cut = policy.latency_threshold_ms * 1e3  # ms -> µs
                good = sum(1 for lat in event.latencies_us if lat <= cut)
                return good, len(event.latencies_us) - good
        elif policy.objective == "deadline":
            if isinstance(event, BatchCompleted):
                return event.slo_met, event.deadline_misses
            if isinstance(event, (RequestsShed, RequestsTimedOut)):
                return 0, event.slo_tracked
        return 0, 0

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _burn(self, policy: SloPolicy, last_index: int, span: int) -> float:
        """Burn rate over the ``span`` windows ending at ``last_index``."""
        good = bad = 0
        per_window = self._tallies[policy.name]
        for index in range(last_index - span + 1, last_index + 1):
            tally = per_window.get(index)
            if tally is not None:
                good += tally.good
                bad += tally.bad
        total = good + bad
        if total == 0:
            return 0.0
        error_rate = bad / total
        return error_rate / (1.0 - policy.target)

    def evaluate(self, now_us: float) -> List[SloBurnRateAlert]:
        """Evaluate every policy at ``now_us``; returns alerts fired now.

        Called from the observability heartbeat.  Idempotent within a
        window: each window index is judged once, on the first heartbeat
        at or after its close.
        """
        index = int(now_us // self.window_us)
        if index <= self._last_evaluated:
            return []
        self._last_evaluated = index
        fired: List[SloBurnRateAlert] = []
        for policy in self.policies:
            for rule in policy.rules:
                burn_long = self._burn(policy, index, rule.long_windows)
                burn_short = self._burn(policy, index, rule.short_windows)
                self.store.record_gauge(
                    "repro_slo_burn_rate",
                    now_us,
                    burn_long,
                    policy=policy.name,
                    severity=rule.severity,
                )
                key = (policy.name, rule.severity)
                firing = burn_long >= rule.threshold and burn_short >= rule.threshold
                if firing and key not in self._active:
                    alert = SloBurnRateAlert(
                        time_us=now_us,
                        policy=policy.name,
                        objective=policy.objective,
                        severity=rule.severity,
                        burn_long=burn_long,
                        burn_short=burn_short,
                        threshold=rule.threshold,
                        window_us=self.window_us,
                    )
                    self._active[key] = alert
                    self.alerts.append(alert)
                    fired.append(alert)
                    self.bus.publish(alert)
                elif not firing and key in self._active and burn_short < rule.threshold:
                    del self._active[key]
                    self.bus.publish(
                        SloAlertResolved(
                            time_us=now_us,
                            policy=policy.name,
                            severity=rule.severity,
                            burn_short=burn_short,
                        )
                    )
        return fired

    # ------------------------------------------------------------------
    # Advisory signal
    # ------------------------------------------------------------------
    def active_alerts(self) -> List[SloBurnRateAlert]:
        """Alerts currently firing (not yet resolved)."""
        return list(self._active.values())

    def under_fast_burn(self) -> bool:
        """True while any fast-severity alert is firing.

        This is the advisory the router and the overload breaker consult:
        under fast burn the router spreads load (skips affinity stickiness)
        and the breaker trips at its low watermark.
        """
        return any(sev == "fast" for _, sev in self._active)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def alert_table(self) -> str:
        """Human-readable table of every alert fired during the run."""
        if not self.alerts:
            return "no SLO alerts fired\n"
        header = (
            f"{'t(ms)':>9}  {'policy':<16} {'objective':<12} {'sev':<5} "
            f"{'burn(long)':>10} {'burn(short)':>11} {'thresh':>7}"
        )
        rows = [header, "-" * len(header)]
        for a in self.alerts:
            rows.append(
                f"{a.time_us / 1e3:>9.1f}  {a.policy:<16} {a.objective:<12} "
                f"{a.severity:<5} {a.burn_long:>9.1f}x {a.burn_short:>10.1f}x "
                f"{a.threshold:>6.1f}x"
            )
        return "\n".join(rows) + "\n"
