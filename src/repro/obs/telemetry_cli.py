"""CLI: ``python -m repro telemetry`` — windowed series, SLO alerts, and
critical-path analytics for any serving or chaos run.

Examples::

    # Single-node run: critical-path report + alert table on stdout.
    python -m repro telemetry --strategy liger --rate 50 --requests 64

    # Overloaded run with an availability SLO; write the windowed series:
    python -m repro telemetry --rate 4000 --requests 512 \\
        --max-pending 32 --admission shed-oldest --deadline-ms 100 \\
        --slo-availability 0.95 --alerts --series-out series.json

    # Cluster chaos run (replicas > 1 switches to the chaos harness):
    python -m repro telemetry --replicas 3 --crashes 1 --seed 7 \\
        --report --alerts --series-out series.prom --timeline merged.json

``--series-out`` picks the format by extension: ``.prom`` writes the
timestamped Prometheus exposition, anything else the JSON window dump.
With none of ``--report``/``--alerts`` given, both are printed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cli import (
    install_log_handler,
    overload_config_from_args,
    overload_parent,
    resolve_model_node,
    workload_parent,
)
from repro.obs.observability import Observability, ObservabilityConfig
from repro.obs.slo import SloPolicy

__all__ = ["main", "build_policies"]


def build_policies(args: argparse.Namespace) -> tuple:
    """Translate the ``--slo-*`` flags into :class:`SloPolicy` objects.

    With no flags given, a default availability policy is armed so the
    alert table always has an objective to judge.
    """
    policies = []
    if args.slo_availability is not None:
        policies.append(SloPolicy("availability", target=args.slo_availability))
    if args.slo_p99_ms is not None:
        policies.append(
            SloPolicy(
                "latency-p99",
                objective="latency",
                target=args.slo_latency_target,
                latency_threshold_ms=args.slo_p99_ms,
            )
        )
    if args.slo_deadline is not None:
        policies.append(
            SloPolicy("deadline", objective="deadline", target=args.slo_deadline)
        )
    if not policies:
        policies.append(SloPolicy("availability", target=0.95))
    return tuple(policies)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro telemetry",
        description="Serve a workload with the telemetry store and SLO "
        "engine armed; render series, burn-rate alerts, and the "
        "critical-path report.",
        parents=[workload_parent(), overload_parent()],
    )
    cluster = parser.add_argument_group("cluster mode (replicas > 1)")
    cluster.add_argument("--replicas", type=int, default=1,
                         help="run a seeded chaos cluster with N replicas")
    cluster.add_argument("--layers", type=int, default=4, metavar="N",
                         help="cluster mode: scale the model to N layers")
    cluster.add_argument("--crashes", type=int, default=0,
                         help="cluster mode: node crashes to draw")
    cluster.add_argument("--partitions", type=int, default=0,
                         help="cluster mode: network partitions to draw")
    slo = parser.add_argument_group("SLO policies")
    slo.add_argument("--slo-availability", type=float, default=None,
                     metavar="T", help="availability objective, e.g. 0.95")
    slo.add_argument("--slo-p99-ms", type=float, default=None, metavar="MS",
                     help="latency objective: good = completed under MS")
    slo.add_argument("--slo-latency-target", type=float, default=0.99,
                     metavar="T", help="good fraction for --slo-p99-ms "
                     "(default 0.99)")
    slo.add_argument("--slo-deadline", type=float, default=None, metavar="T",
                     help="deadline-attainment objective, e.g. 0.9")
    out = parser.add_argument_group("outputs")
    out.add_argument("--report", action="store_true",
                     help="print the critical-path report")
    out.add_argument("--alerts", action="store_true",
                     help="print the burn-rate alert table")
    out.add_argument("--series-out", metavar="PATH", default=None,
                     help="write the windowed series (.prom = exposition "
                     "with timestamps, else JSON)")
    out.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write the end-of-run Prometheus exposition")
    out.add_argument("--timeline", metavar="PATH", default=None,
                     help="write the merged Perfetto timeline JSON")
    out.add_argument("--window-ms", type=float, default=50.0, metavar="MS",
                     help="telemetry window width (default 50 ms)")
    parser.add_argument("--log-level", default=None,
                        help="stderr logging for repro.* (e.g. INFO)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro telemetry``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    install_log_handler(args.log_level, parser)
    if args.replicas < 1:
        parser.error("--replicas must be >= 1")

    obs = Observability(
        ObservabilityConfig(
            telemetry=True,
            window_us=args.window_ms * 1e3,
            slo_policies=build_policies(args),
        )
    )

    if args.replicas > 1:
        from repro.cluster.chaos import ChaosConfig, run_chaos

        config = ChaosConfig(
            replicas=args.replicas,
            strategy=args.strategy,
            model=args.model,
            node=args.node,
            gpus=args.gpus,
            layers=args.layers,
            num_requests=args.requests,
            rate=args.rate,
            batch_size=args.batch,
            crashes=args.crashes,
            partitions=args.partitions,
            seed=args.seed,
            record_trace=True,
        )
        report = run_chaos(config, observability=obs)
        print(report.describe())
        trace, traces = None, report.result.traces
        status = 0 if report.ok else 1
    else:
        from repro.serving.api import serve
        from repro.serving.session import ServingConfig

        model, node = resolve_model_node(args)
        result = serve(
            model,
            node,
            strategy=args.strategy,
            workload=args.workload,
            arrival_rate=args.rate,
            num_requests=args.requests,
            batch_size=args.batch,
            seed=args.seed,
            config=ServingConfig(
                record_trace=True,
                overload=overload_config_from_args(args),
                observability=obs,
            ),
        )
        print(result.summary())
        trace, traces = result.trace, ()
        status = 0

    want_report = args.report or not (args.report or args.alerts)
    want_alerts = args.alerts or not (args.report or args.alerts)
    if want_report:
        print()
        print(obs.critical_path(trace, traces=traces).describe())
    if want_alerts:
        print()
        print(obs.slo.alert_table())
    if args.series_out:
        obs.save_series(args.series_out)
        print(f"windowed series written to {args.series_out}")
    if args.metrics_out:
        obs.save_prometheus(args.metrics_out)
        print(f"prometheus metrics written to {args.metrics_out}")
    if args.timeline:
        counts = obs.save_merged_trace(args.timeline, trace=trace, traces=traces)
        print(
            f"merged timeline written to {args.timeline} "
            f"({counts['kernel']} kernels, {counts['span']} span rows, "
            f"{counts['instant']} instants)"
        )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro
    sys.exit(main())
