"""Per-request spans reconstructed from the event bus.

A span is one request's life on the serving timeline:

```
arrival ──▶ admitted ──▶ [queued] ──▶ [prefill] ──▶ [decode]* ──▶ terminal
```

The builder subscribes to the bus and folds the lifecycle events into
:class:`RequestSpan` records: a ``queued`` segment from the request's own
arrival to its first dispatch (covering both queueing and batching delay —
the paper's *pending time*), then one execution segment per dispatched
batch (several for lifecycle decode iterations), then a terminal state.
Requests shed or expired while still queued get only their ``queued``
segment, closed at the drop instant.

Purely derived state: the builder never publishes or schedules anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.events import (
    BatchCompleted,
    BatchDispatched,
    BatchPreempted,
    Event,
    EventBus,
    RequestsAdmitted,
    RequestsShed,
    RequestsTimedOut,
)

__all__ = ["SpanSegment", "RequestSpan", "SpanBuilder"]


@dataclass(frozen=True)
class SpanSegment:
    """One closed interval of a request's life (times in µs)."""

    name: str  #: ``"queued"``, ``"prefill"``, or ``"decode"``
    start_us: float
    end_us: float

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class RequestSpan:
    """One request's reconstructed timeline."""

    rid: int
    arrival_us: float
    admitted_us: Optional[float] = None
    segments: List[SpanSegment] = field(default_factory=list)
    #: Terminal state (``completed`` / ``shed`` / ``timed_out``) or
    #: ``"pending"`` if the run ended with the request unresolved.
    state: str = "pending"
    end_us: Optional[float] = None
    #: Batch ids the request rode in, in dispatch order.
    batch_ids: List[int] = field(default_factory=list)
    # Open execution segment: (phase, start) until its batch completes.
    _open: Optional[tuple] = None
    _dispatched_once: bool = False

    @property
    def queue_wait_us(self) -> Optional[float]:
        """Own arrival → first dispatch; ``None`` if never dispatched."""
        for seg in self.segments:
            if seg.name == "queued":
                return seg.duration_us
        return None

    @property
    def latency_us(self) -> Optional[float]:
        if self.state != "completed" or self.end_us is None:
            return None
        return self.end_us - self.arrival_us


class SpanBuilder:
    """Folds bus events into per-request spans."""

    def __init__(self, bus: EventBus) -> None:
        self._spans: Dict[int, RequestSpan] = {}
        bus.subscribe(self._on_event)

    # ------------------------------------------------------------------
    def spans(self) -> List[RequestSpan]:
        """All reconstructed spans, ordered by request id."""
        return [self._spans[rid] for rid in sorted(self._spans)]

    def get(self, rid: int) -> Optional[RequestSpan]:
        """The span for one request id, or ``None`` if never seen."""
        return self._spans.get(rid)

    def __len__(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------
    def _span(self, rid: int, arrival_us: float) -> RequestSpan:
        span = self._spans.get(rid)
        if span is None:
            span = RequestSpan(rid=rid, arrival_us=arrival_us)
            self._spans[rid] = span
        return span

    def _on_event(self, event: Event) -> None:
        if isinstance(event, RequestsAdmitted):
            for rid, arrival in zip(event.rids, event.arrivals_us):
                span = self._span(rid, arrival)
                if span.admitted_us is None:
                    span.admitted_us = event.time_us
        elif isinstance(event, BatchDispatched):
            for rid, wait in zip(event.rids, event.queue_waits_us):
                arrival = event.time_us - wait
                span = self._span(rid, arrival)
                if not span._dispatched_once:
                    span._dispatched_once = True
                    span.segments.append(
                        SpanSegment("queued", span.arrival_us, event.time_us)
                    )
                span.batch_ids.append(event.batch_id)
                span._open = (event.phase, event.time_us)
        elif isinstance(event, BatchCompleted):
            completed = set(event.completed_rids)
            for rid in event.rids:
                span = self._spans.get(rid)
                if span is None:
                    continue
                if span._open is not None:
                    phase, start = span._open
                    span.segments.append(
                        SpanSegment(phase, start, event.time_us)
                    )
                    span._open = None
                if rid in completed:
                    span.state = "completed"
                    span.end_us = event.time_us
        elif isinstance(event, BatchPreempted):
            # The preempted batch's members go back to queued; their next
            # dispatch opens a fresh execution segment.
            for span in self._spans.values():
                if span.batch_ids and span.batch_ids[-1] == event.batch_id:
                    span._open = None
        elif isinstance(event, (RequestsShed, RequestsTimedOut)):
            terminal = (
                "shed" if isinstance(event, RequestsShed) else "timed_out"
            )
            for rid in event.rids:
                span = self._span(rid, event.time_us)
                if span._open is not None:
                    phase, start = span._open
                    span.segments.append(
                        SpanSegment(phase, start, event.time_us)
                    )
                    span._open = None
                elif not span._dispatched_once:
                    span.segments.append(
                        SpanSegment("queued", span.arrival_us, event.time_us)
                    )
                    span._dispatched_once = True
                span.state = terminal
                span.end_us = event.time_us
