"""Windowed time-series store fed by the observability heartbeat.

The :class:`MetricsRegistry` answers "what are the totals now"; this module
answers "when did it happen".  A :class:`TimeSeriesStore` keeps a ring of
fixed-width, sim-timestamped windows.  On every ``Engine.heartbeat`` tick
the observability facade pumps the registry into the store:

* every **gauge** (and every registered *source* — see below) is sampled
  into the current window (last-write-wins within a window);
* every **counter** label-series records its cumulative value, so windowed
  rates fall out as deltas between windows;
* raw **observations** (latencies, queue waits) stream in from the event
  bus so the store can answer windowed percentile queries exactly.

Per-replica federation: the cluster registers one *source* per replica for
the same metric name with a ``replica`` label, so the PR-6 fleet rolls up
into a single queryable series family (``sum_latest`` gives the fleet
total, ``series(name, replica="2")`` one replica's history).

Everything here is read-only with respect to the simulation: sampling
happens on the same heartbeat the gauge snapshots already ride, so turning
the store on moves no kernel.

Exports: :meth:`TimeSeriesStore.to_prometheus` renders every windowed
sample with an explicit millisecond timestamp (valid exposition 0.0.4 —
one ``TYPE`` header per family, samples in time order), and
:meth:`TimeSeriesStore.snapshot` is the JSON-friendly dump the
``--series-out`` CLI flag writes.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry, _fmt, _label_key, _render_labels

__all__ = ["TimeSeriesStore"]

_LabelKey = Tuple[Tuple[str, str], ...]
_SeriesKey = Tuple[str, _LabelKey]


class _Window:
    """One fixed-width slice of sim time and everything sampled inside it."""

    __slots__ = ("index", "start_us", "gauges", "counters", "observations")

    def __init__(self, index: int, start_us: float) -> None:
        self.index = index
        self.start_us = start_us
        self.gauges: Dict[_SeriesKey, float] = {}
        self.counters: Dict[_SeriesKey, float] = {}
        self.observations: Dict[_SeriesKey, List[float]] = {}


class TimeSeriesStore:
    """Ring buffer of sim-timestamped metric windows.

    Parameters
    ----------
    window_us:
        Width of one window in simulation microseconds (default 50 ms).
        This is also the quantum of the SLO engine's burn-rate windows.
    max_windows:
        Ring capacity; the oldest window is evicted (and counted in
        :attr:`evicted_windows`) once exceeded.
    """

    def __init__(self, *, window_us: float = 50_000.0, max_windows: int = 512) -> None:
        if window_us <= 0:
            raise ConfigError("window_us must be positive")
        if max_windows < 2:
            raise ConfigError("max_windows must be at least 2")
        self.window_us = float(window_us)
        self.max_windows = int(max_windows)
        self.windows: Deque[_Window] = deque()
        self.evicted_windows = 0
        #: Metric name -> declared type ("gauge"/"counter"/"observations"),
        #: pinned on first write so the exporter can emit one TYPE header.
        self._kinds: Dict[str, str] = {}
        #: Registered live sources: (name, labels) -> callback.
        self._sources: List[Tuple[str, _LabelKey, Callable[[], float]]] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _window_for(self, time_us: float) -> _Window:
        index = int(time_us // self.window_us)
        if self.windows and index <= self.windows[-1].index:
            # Clock is monotone in practice; clamp stragglers (events
            # published mid-heartbeat) into the newest window.
            for w in reversed(self.windows):
                if w.index <= index:
                    return w
            return self.windows[0]
        window = _Window(index, index * self.window_us)
        self.windows.append(window)
        while len(self.windows) > self.max_windows:
            self.windows.popleft()
            self.evicted_windows += 1
        return window

    def _declare(self, name: str, kind: str) -> None:
        seen = self._kinds.setdefault(name, kind)
        if seen != kind:
            raise ConfigError(
                f"series {name!r} already recorded as {seen}, not {kind}"
            )

    def record_gauge(self, name: str, time_us: float, value: float, **labels: str) -> None:
        """Sample a point-in-time value into the window of ``time_us``."""
        self._declare(name, "gauge")
        key = (name, _label_key(labels))
        self._window_for(time_us).gauges[key] = float(value)

    def record_counter(
        self, name: str, time_us: float, cumulative: float, **labels: str
    ) -> None:
        """Record a counter's *cumulative* value; rates are window deltas."""
        self._declare(name, "counter")
        key = (name, _label_key(labels))
        self._window_for(time_us).counters[key] = float(cumulative)

    def observe(self, name: str, time_us: float, value: float, **labels: str) -> None:
        """Append one raw observation (for windowed percentile queries)."""
        self._declare(name, "observations")
        key = (name, _label_key(labels))
        self._window_for(time_us).observations.setdefault(key, []).append(float(value))

    # ------------------------------------------------------------------
    # Federation sources
    # ------------------------------------------------------------------
    def add_source(self, name: str, fn: Callable[[], float], **labels: str) -> None:
        """Register a live gauge source sampled on every pump.

        The cluster registers one source per replica under the same
        ``name`` with a distinguishing label (``replica="0"`` ...), which
        is what federates the fleet into one series family.
        """
        self._declare(name, "gauge")
        self._sources.append((name, _label_key(labels), fn))

    def pump(self, registry: MetricsRegistry, time_us: float) -> None:
        """Sample the registry and every registered source at ``time_us``.

        Called from the observability heartbeat.  Counters record their
        cumulative per-label values; gauges and sources record last-value.
        Histograms are covered by the bus-fed observation streams plus the
        ``_count``/``_sum`` cumulative series recorded here.
        """
        window = self._window_for(time_us)
        for cname, counter in registry._counters.items():
            self._declare(cname, "counter")
            for lkey, val in counter._values.items():
                window.counters[(cname, lkey)] = val
        for gname, gauge in registry._gauges.items():
            self._declare(gname, "gauge")
            window.gauges[(gname, ())] = gauge.value()
        for hname, hist in registry._histograms.items():
            self._declare(hname + "_count", "counter")
            self._declare(hname + "_sum", "counter")
            window.counters[(hname + "_count", ())] = float(hist.count)
            window.counters[(hname + "_sum", ())] = float(hist.sum)
        for sname, lkey, fn in self._sources:
            window.gauges[(sname, lkey)] = float(fn())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def series(self, name: str, **labels: str) -> List[Tuple[float, float]]:
        """``(window_start_us, value)`` pairs for one gauge/counter series."""
        key = (name, _label_key(labels))
        out: List[Tuple[float, float]] = []
        for w in self.windows:
            if key in w.gauges:
                out.append((w.start_us, w.gauges[key]))
            elif key in w.counters:
                out.append((w.start_us, w.counters[key]))
        return out

    def latest(self, name: str, **labels: str) -> Optional[float]:
        """Most recent sampled value of one series (None if never seen)."""
        key = (name, _label_key(labels))
        for w in reversed(self.windows):
            if key in w.gauges:
                return w.gauges[key]
            if key in w.counters:
                return w.counters[key]
        return None

    def sum_latest(self, name: str) -> float:
        """Fleet roll-up: sum of the latest value of every label-series."""
        latest: Dict[_LabelKey, float] = {}
        for w in self.windows:
            for (sname, lkey), val in w.gauges.items():
                if sname == name:
                    latest[lkey] = val
            for (sname, lkey), val in w.counters.items():
                if sname == name:
                    latest[lkey] = val
        return sum(latest.values())

    def label_sets(self, name: str) -> List[Dict[str, str]]:
        """Every label combination ever recorded under ``name``."""
        seen: List[_LabelKey] = []
        for w in self.windows:
            for source in (w.gauges, w.counters, w.observations):
                for sname, lkey in source:
                    if sname == name and lkey not in seen:
                        seen.append(lkey)
        return [dict(lkey) for lkey in sorted(seen)]

    def rate(self, name: str, *, windows: Optional[int] = None, **labels: str) -> float:
        """Per-second rate of a counter over the last ``windows`` windows.

        Computed as (last cumulative - first cumulative) / elapsed span.
        ``windows=None`` uses the whole retained history.  Returns 0.0 when
        fewer than two samples exist.
        """
        pts = self.series(name, **labels)
        if windows is not None:
            pts = pts[-windows:]
        if len(pts) < 2:
            return 0.0
        span_us = pts[-1][0] - pts[0][0]
        if span_us <= 0:
            return 0.0
        return (pts[-1][1] - pts[0][1]) / (span_us / 1e6)

    def window_rates(self, name: str, **labels: str) -> List[Tuple[float, float]]:
        """Per-window rate series of a counter (delta vs. previous window)."""
        pts = self.series(name, **labels)
        out: List[Tuple[float, float]] = []
        for prev, cur in zip(pts, pts[1:]):
            span_us = cur[0] - prev[0]
            if span_us > 0:
                out.append((cur[0], (cur[1] - prev[1]) / (span_us / 1e6)))
        return out

    def percentile(
        self, name: str, q: float, *, windows: Optional[int] = None, **labels: str
    ) -> Optional[float]:
        """Nearest-rank ``q``-quantile of observations in the last windows."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile {q} not in [0, 1]")
        key = (name, _label_key(labels))
        recent = list(self.windows)
        if windows is not None:
            recent = recent[-windows:]
        values: List[float] = []
        for w in recent:
            values.extend(w.observations.get(key, ()))
        if not values:
            return None
        values.sort()
        rank = min(len(values) - 1, max(0, math.ceil(q * len(values)) - 1))
        return values[rank]

    def observation_count(self, name: str, **labels: str) -> int:
        """Total observations retained for one series."""
        key = (name, _label_key(labels))
        return sum(len(w.observations.get(key, ())) for w in self.windows)

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Exposition 0.0.4 with per-window millisecond timestamps.

        Unlike the registry's snapshot exposition this renders the full
        history: one sample line per (series, window), timestamped with the
        window start so a Prometheus backfill ingests the whole run.
        """
        families: Dict[str, List[str]] = {}
        for w in self.windows:
            ts_ms = int(w.start_us / 1e3)
            for source in (w.gauges, w.counters):
                for (name, lkey), val in sorted(source.items()):
                    families.setdefault(name, []).append(
                        f"{name}{_render_labels(lkey)} {_fmt(val)} {ts_ms}"
                    )
        lines: List[str] = []
        for name in sorted(families):
            kind = self._kinds.get(name, "gauge")
            kind = "counter" if kind == "counter" else "gauge"
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(families[name])
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump of every window (the ``--series-out`` body)."""

        def render(key: _SeriesKey) -> str:
            name, lkey = key
            return name + _render_labels(lkey)

        return {
            "window_us": self.window_us,
            "max_windows": self.max_windows,
            "evicted_windows": self.evicted_windows,
            "windows": [
                {
                    "start_us": w.start_us,
                    "gauges": {render(k): v for k, v in sorted(w.gauges.items())},
                    "counters": {render(k): v for k, v in sorted(w.counters.items())},
                    "observations": {
                        render(k): list(v) for k, v in sorted(w.observations.items())
                    },
                }
                for w in self.windows
            ],
        }

    def save_series(self, path: str) -> None:
        """Write the series to ``path``: ``.prom`` → exposition, else JSON."""
        if path.endswith(".prom"):
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(self.to_prometheus())
        else:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(self.snapshot(), fh, indent=2)
