"""Critical-path analytics over the merged timeline.

Answers the question end-of-run aggregates cannot: *where did the makespan
go*.  Two views, both derived from the kernel traces (plus request spans
for queue context):

**Per-GPU attribution** — an interval sweep over each (replica, GPU) lane
classifies every instant of the run makespan as ``compute`` (a
compute-like kernel resident, regardless of overlap), ``comm`` (only
communication resident), or ``idle`` (nothing resident); the three
partition the makespan exactly.  Contention — the time kernels spent
inflated past their no-load durations by the §2.3 interference model — is
then carved proportionally out of the busy classes, so::

    compute + comm + contention + idle == makespan   (per lane, exactly)

which is the invariant the acceptance tests pin on all four servers and a
seeded chaos run.

**Critical path** — a backward walk from the last kernel to finish.  At
each step the gating edge is chosen the way the simulator actually
serialised the work: a kernel that started after it became ready was
waiting on its *device* (follow the same-lane predecessor); a kernel that
started the moment it was ready was waiting on its *inputs* (follow the
latest-finishing kernel anywhere that released it — on another GPU this is
a comm edge).  Gaps between hops become ``wait`` segments, so the path
partitions the tail-to-start interval and its segments sum to what they
cover of the makespan.  The ranked "top segments" report aggregates path
time by (kind, op) — the segments to attack first, MPK-style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.kernel import KernelKind

__all__ = [
    "GpuAttribution",
    "PathSegment",
    "CriticalPathReport",
    "analyze_critical_path",
]

_EPS = 1e-6  # float-comparison slack, µs


@dataclass
class GpuAttribution:
    """Makespan attribution for one (replica, GPU) lane, in µs."""

    replica: str
    gpu: int
    compute_us: float = 0.0
    comm_us: float = 0.0
    contention_us: float = 0.0
    idle_us: float = 0.0

    @property
    def total_us(self) -> float:
        return self.compute_us + self.comm_us + self.contention_us + self.idle_us

    @property
    def lane(self) -> str:
        return f"{self.replica}:gpu{self.gpu}" if self.replica else f"gpu{self.gpu}"


@dataclass
class PathSegment:
    """One hop of the critical path."""

    kind: str  # "compute" | "comm" | "wait"
    name: str
    replica: str
    gpu: int
    start_us: float
    end_us: float

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class CriticalPathReport:
    """Everything the analyzer derived from one run's timelines."""

    t0_us: float
    makespan_us: float
    per_gpu: List[GpuAttribution] = field(default_factory=list)
    path: List[PathSegment] = field(default_factory=list)
    #: Aggregate queue wait from the request spans (µs), for context.
    span_queue_wait_us: float = 0.0
    span_count: int = 0

    @property
    def path_coverage_us(self) -> float:
        """Total time the walked path accounts for."""
        return sum(s.duration_us for s in self.path)

    def top_segments(self, n: int = 10) -> List[Tuple[str, str, float, int]]:
        """``(kind, op, total_us, hops)`` ranked by path time, descending."""
        agg: Dict[Tuple[str, str], Tuple[float, int]] = {}
        for seg in self.path:
            key = (seg.kind, seg.name)
            total, hops = agg.get(key, (0.0, 0))
            agg[key] = (total + seg.duration_us, hops + 1)
        ranked = sorted(
            ((kind, op, total, hops) for (kind, op), (total, hops) in agg.items()),
            key=lambda item: -item[2],
        )
        return ranked[:n]

    def describe(self) -> str:
        """The human-readable report the ``telemetry`` CLI prints."""
        lines = [
            f"makespan: {self.makespan_us / 1e3:.2f} ms "
            f"(from t={self.t0_us / 1e3:.2f} ms)",
        ]
        if self.span_count:
            lines.append(
                f"requests: {self.span_count} spans, "
                f"total queue wait {self.span_queue_wait_us / 1e3:.2f} ms"
            )
        lines.append("")
        header = (
            f"{'lane':<14} {'compute':>10} {'comm':>10} "
            f"{'contention':>11} {'idle':>10} {'busy%':>6}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for a in sorted(self.per_gpu, key=lambda a: a.lane):
            busy = a.compute_us + a.comm_us + a.contention_us
            frac = 100.0 * busy / a.total_us if a.total_us > 0 else 0.0
            lines.append(
                f"{a.lane:<14} {a.compute_us / 1e3:>8.2f}ms {a.comm_us / 1e3:>8.2f}ms "
                f"{a.contention_us / 1e3:>9.2f}ms {a.idle_us / 1e3:>8.2f}ms "
                f"{frac:>5.1f}%"
            )
        lines.append("")
        lines.append(
            f"critical path: {len(self.path)} segments covering "
            f"{self.path_coverage_us / 1e3:.2f} ms"
        )
        top = self.top_segments()
        if top:
            header = f"{'rank':>4}  {'kind':<8} {'segment':<28} {'path time':>10} {'hops':>5}"
            lines.append(header)
            lines.append("-" * len(header))
            for i, (kind, op, total, hops) in enumerate(top, 1):
                lines.append(
                    f"{i:>4}  {kind:<8} {op:<28} {total / 1e3:>8.2f}ms {hops:>5}"
                )
        return "\n".join(lines) + "\n"


class _Row:
    """A trace row tagged with its replica label."""

    __slots__ = ("replica", "row")

    def __init__(self, replica: str, row) -> None:
        self.replica = replica
        self.row = row


def _sweep_lane(rows: Sequence, t0: float, t1: float) -> Tuple[float, float, float]:
    """(compute, comm, idle) partition of [t0, t1] for one lane's rows.

    Priority at each instant: any compute-like kernel resident -> compute;
    else any comm kernel resident -> comm; else idle.  Because the three
    classes are decided per elementary interval of one boundary-sorted
    sweep, they partition [t0, t1] exactly (no double counting under
    overlap).
    """
    events: List[Tuple[float, int, int]] = []  # (time, delta, 0=compute 1=comm)
    for r in rows:
        lo = max(t0, min(t1, r.start))
        hi = max(t0, min(t1, r.end))
        if hi <= lo:
            continue
        chan = 1 if r.kind is KernelKind.COMM else 0
        events.append((lo, +1, chan))
        events.append((hi, -1, chan))
    events.sort()
    compute = comm = idle = 0.0
    active = [0, 0]
    prev = t0
    for time, delta, chan in events:
        if time > prev:
            if active[0] > 0:
                compute += time - prev
            elif active[1] > 0:
                comm += time - prev
            else:
                idle += time - prev
            prev = time
        active[chan] += delta
    if t1 > prev:
        idle += t1 - prev
    return compute, comm, idle


def _walk_path(tagged: List[_Row], t0: float) -> List[PathSegment]:
    """Backward critical-path walk over every lane's rows."""
    if not tagged:
        return []
    by_lane: Dict[Tuple[str, int], List[_Row]] = {}
    for t in tagged:
        by_lane.setdefault((t.replica, t.row.gpu), []).append(t)

    def kind_of(row) -> str:
        return "comm" if row.kind is KernelKind.COMM else "compute"

    cur = max(tagged, key=lambda t: (t.row.end, t.row.start))
    frontier = cur.row.end
    segments: List[PathSegment] = []
    for _ in range(len(tagged) + 1):  # bounded: each hop strictly recedes
        row = cur.row
        seg_start = min(row.start, frontier)
        if frontier > seg_start:
            segments.append(
                PathSegment(
                    kind=kind_of(row),
                    name=row.op or row.name,
                    replica=cur.replica,
                    gpu=row.gpu,
                    start_us=seg_start,
                    end_us=frontier,
                )
            )
        frontier = seg_start
        if frontier <= t0 + _EPS:
            break
        if row.start > row.ready + _EPS:
            # Device-gated: the lane was busy until our start.
            pool = by_lane.get((cur.replica, row.gpu), [])
            gate = row.start
        else:
            # Input-gated: follow whatever finished last before we were
            # ready — on another GPU this is the comm/readiness edge.
            pool = tagged
            gate = row.ready
        limit = min(gate + _EPS, frontier)
        pred: Optional[_Row] = None
        for cand in pool:
            if cand is cur or cand.row.end > limit:
                continue
            if pred is None or cand.row.end > pred.row.end:
                pred = cand
        if pred is None:
            if frontier > t0:
                segments.append(
                    PathSegment(
                        kind="wait",
                        name="start",
                        replica=cur.replica,
                        gpu=row.gpu,
                        start_us=t0,
                        end_us=frontier,
                    )
                )
            break
        if pred.row.end < frontier - _EPS:
            segments.append(
                PathSegment(
                    kind="wait",
                    name="dependency" if pool is tagged else "device",
                    replica=cur.replica,
                    gpu=row.gpu,
                    start_us=pred.row.end,
                    end_us=frontier,
                )
            )
            frontier = pred.row.end
        cur = pred
    segments.reverse()
    return segments


def analyze_critical_path(
    trace=None,
    *,
    traces: Sequence[Tuple[str, object]] = (),
    spans: Sequence = (),
) -> CriticalPathReport:
    """Build the :class:`CriticalPathReport` for one run.

    ``trace`` is a single-server :class:`~repro.sim.tracing.Trace`;
    ``traces`` takes the cluster's labelled ``(label, Trace)`` pairs.  Both
    may be given; lanes are keyed ``replica:gpuN``.
    """
    tagged: List[_Row] = []
    if trace is not None:
        tagged.extend(_Row("", r) for r in trace.rows)
    for label, t in traces:
        tagged.extend(_Row(str(label), r) for r in t.rows)

    queue_wait = sum(s.queue_wait_us or 0.0 for s in spans)
    if not tagged:
        return CriticalPathReport(
            t0_us=0.0,
            makespan_us=0.0,
            span_queue_wait_us=queue_wait,
            span_count=len(spans),
        )

    t0 = min(t.row.start for t in tagged)
    t1 = max(t.row.end for t in tagged)
    per_gpu: List[GpuAttribution] = []
    by_lane: Dict[Tuple[str, int], List] = {}
    for t in tagged:
        by_lane.setdefault((t.replica, t.row.gpu), []).append(t.row)
    for (replica, gpu), rows in sorted(by_lane.items()):
        compute, comm, idle = _sweep_lane(rows, t0, t1)
        inflation = sum(max(0.0, r.duration - r.noload_duration) for r in rows)
        busy = compute + comm
        contention = min(inflation, busy)
        if busy > 0 and contention > 0:
            scale = (busy - contention) / busy
            compute *= scale
            comm *= scale
        per_gpu.append(
            GpuAttribution(
                replica=replica,
                gpu=gpu,
                compute_us=compute,
                comm_us=comm,
                contention_us=contention,
                idle_us=idle,
            )
        )

    return CriticalPathReport(
        t0_us=t0,
        makespan_us=t1 - t0,
        per_gpu=per_gpu,
        path=_walk_path(tagged, t0),
        span_queue_wait_us=queue_wait,
        span_count=len(spans),
    )
