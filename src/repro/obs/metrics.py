"""Metrics registry: counters, gauges, histograms, and their exporters.

The registry is the numeric face of the event bus: it subscribes to the
typed events of :mod:`repro.obs.events` and re-derives every aggregate the
serving layer used to keep by hand — terminal request counts by state,
retries, preemptions, SLO tracking, breaker and strategy transitions — plus
latency and queue-wait histograms.  A run's Prometheus exposition therefore
*must* agree with its :class:`~repro.serving.metrics.ServingMetrics`; the
test suite asserts exactly that.

Exports:

* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition 0.0.4
  (``# HELP`` / ``# TYPE`` / samples), suitable for a textfile collector.
* :meth:`MetricsRegistry.snapshot` — one JSON-friendly dict of everything,
  including the gauge samples collected on ``Engine.heartbeat``.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.events import (
    BatchCompleted,
    BatchDispatched,
    BatchPreempted,
    BatchStaged,
    BreakerClosed,
    BreakerOpened,
    Event,
    EventBus,
    NodeCrashed,
    NodeHealthChanged,
    NodeRecovered,
    Principle1Violation,
    RequestsAdmitted,
    RequestsFailedOver,
    RequestsShed,
    RequestsTimedOut,
    RetryScheduled,
    SloBurnRateAlert,
    StrategyDowngraded,
    StrategyUpgraded,
)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency-style bucket upper bounds (milliseconds).
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0,
)


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Order matters: backslashes first, or the escapes themselves would be
    re-escaped.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonic counter, optionally labelled."""

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to the labelled series."""
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current count for one label combination (0.0 if never touched)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def expose(self) -> List[str]:
        """Prometheus text-exposition lines for this counter."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} {_fmt(self._values[key])}"
            )
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines

    def snapshot(self) -> Dict[str, float]:
        """JSON-friendly mapping of rendered label set -> count."""
        if not self._values:
            return {"": 0.0}
        return {
            ",".join(f"{k}={v}" for k, v in key) or "": val
            for key, val in self._values.items()
        }


class Gauge:
    """Point-in-time value: set directly or backed by a callback."""

    def __init__(
        self, name: str, help: str, fn: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self.help = help
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge directly (ignored on callback-backed gauges)."""
        self._value = float(value)

    def value(self) -> float:
        """Current reading (live callback when one is registered)."""
        return float(self._fn()) if self._fn is not None else self._value

    def expose(self) -> List[str]:
        """Prometheus text-exposition lines for this gauge."""
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
            f"{self.name} {_fmt(self.value())}",
        ]

    def snapshot(self) -> float:
        """The current reading, for the JSON snapshot."""
        return self.value()


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    Raw observations are also retained so :meth:`percentile` can answer
    exact quantile queries (the bucket bounds are too coarse for p99
    judgements).  The sorted buffer is cached behind a dirty flag: repeated
    queries between observations reuse one sort (``sort_count`` counts the
    sorts actually performed, and the unit tests pin query-after-query
    identity on it).
    """

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS_MS,
    ) -> None:
        if not buckets or sorted(buckets) != list(buckets):
            raise ConfigError(f"histogram {name}: buckets must be sorted")
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +Inf last
        self.sum = 0.0
        self.count = 0
        self._raw: List[float] = []
        self._sorted: List[float] = []
        self._dirty = False
        #: Number of full sorts performed (observability for the cache).
        self.sort_count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        self.sum += value
        self.count += 1
        self._raw.append(value)
        self._dirty = True
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def percentile(self, q: float) -> Optional[float]:
        """Exact ``q``-quantile (0 <= q <= 1) of the raw observations.

        Returns ``None`` when nothing has been observed.  Uses the
        nearest-rank method on the cached sorted buffer; only re-sorts
        after a new observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"histogram {self.name}: quantile {q} not in [0, 1]")
        if not self._raw:
            return None
        if self._dirty:
            self._sorted = sorted(self._raw)
            self._dirty = False
            self.sort_count += 1
        rank = min(len(self._sorted) - 1, max(0, math.ceil(q * len(self._sorted)) - 1))
        return self._sorted[rank]

    def expose(self) -> List[str]:
        """Prometheus text-exposition lines (cumulative ``_bucket`` series)."""
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
        ]
        cumulative = 0
        for bound, n in zip(self.buckets, self.counts):
            cumulative += n
            lines.append(
                f'{self.name}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
            )
        cumulative += self.counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {_fmt(round(self.sum, 6))}")
        lines.append(f"{self.name}_count {self.count}")
        return lines

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly buckets / counts / sum / count."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Holds the run's metrics and derives the standard set from the bus."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Time-stamped gauge samples appended by the observability
        #: heartbeat (:meth:`repro.obs.observability.Observability.arm`).
        self.samples: List[Dict[str, float]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str) -> Counter:
        """Get or create the counter ``name`` (idempotent)."""
        if name not in self._counters:
            self._require_fresh(name)
            self._counters[name] = Counter(name, help)
        return self._counters[name]

    def gauge(
        self, name: str, help: str, fn: Optional[Callable[[], float]] = None
    ) -> Gauge:
        """Get or create the gauge ``name``; a new ``fn`` rebinds it."""
        if name in self._gauges:
            if fn is not None:
                self._gauges[name]._fn = fn
            return self._gauges[name]
        self._require_fresh(name)
        self._gauges[name] = Gauge(name, help, fn)
        return self._gauges[name]

    def histogram(
        self, name: str, help: str, buckets: Sequence[float] = DEFAULT_BUCKETS_MS
    ) -> Histogram:
        """Get or create the histogram ``name`` (idempotent)."""
        if name not in self._histograms:
            self._require_fresh(name)
            self._histograms[name] = Histogram(name, help, buckets)
        return self._histograms[name]

    def _require_fresh(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ConfigError(f"metric {name!r} already registered with another type")

    # ------------------------------------------------------------------
    # The standard event-derived set
    # ------------------------------------------------------------------
    def bind(self, bus: EventBus) -> None:
        """Register the standard metrics and subscribe their derivations."""
        self.counter(
            "repro_requests_admitted_total",
            "Requests accepted into the serving pipeline.",
        )
        self.counter(
            "repro_requests_terminal_total",
            "Requests reaching a terminal state, by state.",
        )
        self.counter(
            "repro_requests_shed_total",
            "Requests dropped without service, by mechanism.",
        )
        self.counter(
            "repro_batches_dispatched_total",
            "Batches handed to the strategy, by phase.",
        )
        self.counter(
            "repro_batches_staged_total",
            "Batches KV-charged onto the staged runway.",
        )
        self.counter(
            "repro_batches_preempted_total",
            "Staged batches preempted-and-requeued under KV pressure.",
        )
        self.counter("repro_retries_total", "Launch retries scheduled.")
        self.counter(
            "repro_deadline_misses_total",
            "Completed requests that finished after their deadline.",
        )
        self.counter(
            "repro_slo_tracked_total",
            "Deadline-carrying requests that reached a terminal state.",
        )
        self.counter(
            "repro_slo_met_total",
            "Deadline-carrying requests that completed on time.",
        )
        self.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker transitions, by resulting state.",
        )
        self.counter(
            "repro_strategy_changes_total",
            "Recovery-layer strategy transitions, by kind.",
        )
        self.counter(
            "repro_principle1_violations_total",
            "Executed rounds whose secondary subset outlived its window.",
        )
        self.counter(
            "repro_failovers_total",
            "Batches re-dispatched from a failed replica to another.",
        )
        self.counter(
            "repro_node_health_transitions_total",
            "Router health-state flips, by resulting state.",
        )
        self.counter(
            "repro_node_lifecycle_total",
            "Replica crash/recover transitions, by kind.",
        )
        self.counter(
            "repro_slo_alerts_total",
            "Burn-rate alerts fired, by policy and severity.",
        )
        self.histogram(
            "repro_request_latency_ms",
            "Arrival-to-completion latency of completed requests (ms).",
        )
        self.histogram(
            "repro_request_queue_wait_ms",
            "Arrival-to-dispatch wait of dispatched requests (ms).",
        )
        bus.subscribe(self._on_event)

    def _on_event(self, event: Event) -> None:
        c = self._counters
        if isinstance(event, RequestsAdmitted):
            c["repro_requests_admitted_total"].inc(len(event.rids))
        elif isinstance(event, RequestsShed):
            c["repro_requests_terminal_total"].inc(len(event.rids), state="shed")
            c["repro_requests_shed_total"].inc(len(event.rids), where=event.where)
            c["repro_slo_tracked_total"].inc(event.slo_tracked)
        elif isinstance(event, RequestsTimedOut):
            c["repro_requests_terminal_total"].inc(
                len(event.rids), state="timed_out"
            )
            c["repro_slo_tracked_total"].inc(event.slo_tracked)
        elif isinstance(event, BatchDispatched):
            c["repro_batches_dispatched_total"].inc(1, phase=event.phase)
            if event.first:
                hist = self._histograms["repro_request_queue_wait_ms"]
                for wait in event.queue_waits_us:
                    hist.observe(wait / 1e3)
        elif isinstance(event, BatchStaged):
            c["repro_batches_staged_total"].inc(1)
        elif isinstance(event, BatchPreempted):
            c["repro_batches_preempted_total"].inc(1)
        elif isinstance(event, BatchCompleted):
            c["repro_requests_terminal_total"].inc(
                len(event.completed_rids), state="completed"
            )
            c["repro_deadline_misses_total"].inc(event.deadline_misses)
            c["repro_slo_tracked_total"].inc(event.slo_tracked)
            c["repro_slo_met_total"].inc(event.slo_met)
            hist = self._histograms["repro_request_latency_ms"]
            for lat in event.latencies_us:
                hist.observe(lat / 1e3)
        elif isinstance(event, RetryScheduled):
            c["repro_retries_total"].inc(1)
        elif isinstance(event, BreakerOpened):
            c["repro_breaker_transitions_total"].inc(1, state="open")
        elif isinstance(event, BreakerClosed):
            c["repro_breaker_transitions_total"].inc(1, state="closed")
        elif isinstance(event, StrategyDowngraded):
            c["repro_strategy_changes_total"].inc(
                1, kind="overload-downgrade" if event.overload else "downgrade"
            )
        elif isinstance(event, StrategyUpgraded):
            c["repro_strategy_changes_total"].inc(1, kind="upgrade")
        elif isinstance(event, Principle1Violation):
            c["repro_principle1_violations_total"].inc(1)
        elif isinstance(event, RequestsFailedOver):
            c["repro_failovers_total"].inc(1)
        elif isinstance(event, NodeHealthChanged):
            c["repro_node_health_transitions_total"].inc(
                1, healthy=str(event.healthy).lower()
            )
        elif isinstance(event, NodeCrashed):
            c["repro_node_lifecycle_total"].inc(1, kind="crash")
        elif isinstance(event, NodeRecovered):
            c["repro_node_lifecycle_total"].inc(1, kind="recover")
        elif isinstance(event, SloBurnRateAlert):
            c["repro_slo_alerts_total"].inc(
                1, policy=event.policy, severity=event.severity
            )

    # ------------------------------------------------------------------
    # Sampling (driven by the observability heartbeat)
    # ------------------------------------------------------------------
    def sample_gauges(self, time_us: float) -> None:
        """Append one time-stamped reading of every registered gauge."""
        row: Dict[str, float] = {"time_us": time_us}
        for name, gauge in self._gauges.items():
            row[name] = gauge.value()
        self.samples.append(row)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for name in sorted(self._counters):
            lines.extend(self._counters[name].expose())
        for name in sorted(self._gauges):
            lines.extend(self._gauges[name].expose())
        for name in sorted(self._histograms):
            lines.extend(self._histograms[name].expose())
        return "\n".join(lines) + "\n"

    def save_prometheus(self, path: str) -> None:
        """Write :meth:`to_prometheus` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_prometheus())

    def snapshot(self) -> Dict[str, object]:
        """Everything, JSON-friendly: counters, gauges, histograms, samples."""
        return {
            "counters": {
                name: c.snapshot() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.snapshot() for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
            "samples": self.samples,
        }

    def save_snapshot(self, path: str) -> None:
        """Write :meth:`snapshot` as indented JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2)
