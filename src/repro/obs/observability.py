"""The observability facade a server carries when telemetry is enabled.

One :class:`Observability` object bundles the bus, the registry, and the
span builder, and owns the two exports — Prometheus text and the merged
Perfetto timeline.  Construct one and hand it to the serving entry point::

    from repro.obs import Observability
    obs = Observability()
    result = serve(model, node, observability=obs, record_trace=True, ...)
    obs.save_prometheus("metrics.prom")
    obs.save_merged_trace("trace.json", trace=result.trace)

Zero-overhead when absent: a server constructed without an
``Observability`` holds no bus, publishes nothing, arms no sampling
heartbeat, and its timeline is bit-identical to a build without this
subsystem (the test suite asserts it).  When present, the only engine
interaction is a read-only gauge-sampling heartbeat on
``Engine.heartbeat`` — it never reschedules device work, so enabling
observability does not move a single kernel.
"""

from __future__ import annotations

import json
from typing import Callable, List, Tuple

from repro.errors import ConfigError
from repro.obs.events import EventBus
from repro.obs.export import merged_chrome_trace, validate_merged_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import RequestSpan, SpanBuilder

__all__ = ["Observability"]


class Observability:
    """Bus + registry + spans for one serving run.

    Parameters
    ----------
    sample_period_us:
        Gauge-sampling period for the ``Engine.heartbeat`` snapshot stream
        (default 10 ms of simulated time).
    retain_events:
        Keep every published event on the bus for the exporters.  Disable
        only if you subscribe your own sinks and never export.
    """

    def __init__(
        self,
        *,
        sample_period_us: float = 10_000.0,
        retain_events: bool = True,
    ) -> None:
        if sample_period_us <= 0:
            raise ConfigError("sample_period_us must be positive")
        self.sample_period_us = sample_period_us
        self.bus = EventBus(retain=retain_events)
        self.registry = MetricsRegistry()
        self.registry.bind(self.bus)
        self.spans_builder = SpanBuilder(self.bus)
        self._fault_windows: List[Tuple[str, float, float]] = []
        self._armed = False

    # ------------------------------------------------------------------
    # Server wiring
    # ------------------------------------------------------------------
    def register_gauge(
        self, name: str, help: str, fn: Callable[[], float]
    ) -> None:
        """Expose a live reading (queue depth, KV bytes, ...) as a gauge."""
        self.registry.gauge(name, help, fn)

    def note_fault_plan(self, plan) -> None:
        """Record the armed fault windows for the merged timeline."""
        for fault in getattr(plan, "faults", ()):
            end = fault.end
            if end == float("inf"):
                continue  # open-ended window: nothing sensible to draw
            self._fault_windows.append((fault.describe(), fault.start, end))

    def arm(self, engine) -> None:
        """Start the gauge-sampling heartbeat (idempotent).

        Sampling rides :meth:`~repro.sim.engine.Engine.heartbeat`, so it
        quiesces with the run and never keeps an idle engine alive.
        """
        if self._armed:
            return
        self._armed = True
        self.registry.sample_gauges(engine.now)

        def _sample() -> None:
            self.registry.sample_gauges(engine.now)

        engine.heartbeat(self.sample_period_us, _sample, priority=9)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def events(self):
        """All retained events, in publish order."""
        return self.bus.events

    def spans(self) -> List[RequestSpan]:
        """Per-request spans reconstructed so far."""
        return self.spans_builder.spans()

    @property
    def fault_windows(self) -> List[Tuple[str, float, float]]:
        return list(self._fault_windows)

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition of every registered metric."""
        return self.registry.to_prometheus()

    def save_prometheus(self, path: str) -> None:
        """Write the Prometheus text exposition to ``path``."""
        self.registry.save_prometheus(path)

    def json_snapshot(self) -> dict:
        """Counters, gauges, histograms, heartbeat samples, span summary."""
        snap = self.registry.snapshot()
        snap["spans"] = [
            {
                "rid": s.rid,
                "state": s.state,
                "arrival_us": s.arrival_us,
                "end_us": s.end_us,
                "queue_wait_us": s.queue_wait_us,
                "segments": [
                    [seg.name, seg.start_us, seg.end_us] for seg in s.segments
                ],
            }
            for s in self.spans()
        ]
        snap["num_events"] = len(self.bus.events)
        return snap

    def save_snapshot(self, path: str) -> None:
        """Write :meth:`json_snapshot` as indented JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.json_snapshot(), fh, indent=2)

    def merged_chrome_trace(self, trace=None, *, traces=()) -> dict:
        """The merged timeline: request spans + kernel slices + instants.

        ``traces`` takes labelled ``(label, Trace)`` pairs — the cluster's
        per-replica timelines — rendered with ``pid`` ``"<label>:gpuN"``.
        """
        return merged_chrome_trace(
            spans=self.spans(),
            events=self.bus.events,
            trace=trace,
            traces=traces,
            fault_windows=self._fault_windows,
        )

    def save_merged_trace(self, path: str, trace=None, *, traces=()) -> dict:
        """Write the merged trace JSON; returns the per-class event counts."""
        obj = self.merged_chrome_trace(trace=trace, traces=traces)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(obj, fh)
        return validate_merged_trace(obj)
