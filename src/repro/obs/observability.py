"""The observability facade a server carries when telemetry is enabled.

One :class:`Observability` object bundles the bus, the registry, the span
builder and — when :class:`ObservabilityConfig` asks for them — the
windowed :class:`~repro.obs.telemetry.TimeSeriesStore` and the
:class:`~repro.obs.slo.SloEngine`, and owns the exports: Prometheus text,
the merged Perfetto timeline, windowed series, and the critical-path
report.  Construct one and hand it to the serving entry point::

    from repro.obs import Observability, ObservabilityConfig, SloPolicy
    obs = Observability(ObservabilityConfig(
        telemetry=True,
        slo_policies=(SloPolicy("availability", target=0.95),),
    ))
    result = serve(model, node, observability=obs, record_trace=True, ...)
    obs.save_prometheus("metrics.prom")
    obs.save_series("series.json")
    print(obs.critical_path(trace=result.trace).describe())

Zero-overhead when absent: a server constructed without an
``Observability`` holds no bus, publishes nothing, arms no sampling
heartbeat, and its timeline is bit-identical to a build without this
subsystem (the test suite asserts it).  When present, the only engine
interaction is a read-only sampling heartbeat on ``Engine.heartbeat`` —
gauge snapshots, store pumping and SLO evaluation all ride it and never
reschedule device work, so enabling telemetry does not move a single
kernel.  The *advisory* signal (router spread, breaker early-trip) exists
only when ``slo_policies`` are explicitly configured; a default
``Observability()`` stays bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.analysis import CriticalPathReport, analyze_critical_path
from repro.obs.events import BatchCompleted, BatchDispatched, EventBus
from repro.obs.export import merged_chrome_trace, validate_merged_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEngine, SloPolicy
from repro.obs.spans import RequestSpan, SpanBuilder
from repro.obs.telemetry import TimeSeriesStore

__all__ = ["Observability", "ObservabilityConfig"]


@dataclass(frozen=True)
class ObservabilityConfig:
    """What to arm on one :class:`Observability`.

    ``telemetry`` turns on the windowed time-series store; configuring any
    ``slo_policies`` implies it (burn rates need windows).  Everything
    defaults off so a bare ``Observability()`` keeps the established
    obs-on bit-identity contract.
    """

    sample_period_us: float = 10_000.0
    retain_events: bool = True
    #: Arm the windowed TimeSeriesStore (implied by ``slo_policies``).
    telemetry: bool = False
    #: Telemetry window width (µs); also the SLO burn-rate quantum.
    window_us: float = 50_000.0
    #: Ring capacity of the store.
    max_windows: int = 512
    slo_policies: Tuple[SloPolicy, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.sample_period_us <= 0:
            raise ConfigError("sample_period_us must be positive")
        if self.window_us <= 0:
            raise ConfigError("window_us must be positive")
        object.__setattr__(self, "slo_policies", tuple(self.slo_policies))

    @property
    def wants_telemetry(self) -> bool:
        return self.telemetry or bool(self.slo_policies)


class Observability:
    """Bus + registry + spans (+ store + SLO engine) for one serving run.

    Accepts an :class:`ObservabilityConfig`; the legacy keyword form
    ``Observability(sample_period_us=..., retain_events=...)`` still works
    and overrides the config's fields.
    """

    def __init__(
        self,
        config: Optional[ObservabilityConfig] = None,
        *,
        sample_period_us: Optional[float] = None,
        retain_events: Optional[bool] = None,
    ) -> None:
        if config is None:
            config = ObservabilityConfig()
        if sample_period_us is not None or retain_events is not None:
            overrides = {}
            if sample_period_us is not None:
                overrides["sample_period_us"] = sample_period_us
            if retain_events is not None:
                overrides["retain_events"] = retain_events
            config = replace(config, **overrides)
        self.config = config
        self.sample_period_us = config.sample_period_us
        self.bus = EventBus(retain=config.retain_events)
        self.registry = MetricsRegistry()
        self.registry.bind(self.bus)
        self.spans_builder = SpanBuilder(self.bus)
        self.telemetry: Optional[TimeSeriesStore] = None
        self.slo: Optional[SloEngine] = None
        if config.wants_telemetry:
            self.telemetry = TimeSeriesStore(
                window_us=config.window_us, max_windows=config.max_windows
            )
            self.bus.subscribe(
                self._observe_latencies, types=[BatchCompleted, BatchDispatched]
            )
            if config.slo_policies:
                self.slo = SloEngine(
                    config.slo_policies, bus=self.bus, store=self.telemetry
                )
        self._fault_windows: List[Tuple[str, float, float]] = []
        self._armed = False

    # ------------------------------------------------------------------
    # Server wiring
    # ------------------------------------------------------------------
    def register_gauge(
        self, name: str, help: str, fn: Callable[[], float]
    ) -> None:
        """Expose a live reading (queue depth, KV bytes, ...) as a gauge."""
        self.registry.gauge(name, help, fn)

    def register_source(
        self, name: str, fn: Callable[[], float], **labels: str
    ) -> None:
        """Register a labelled store source (per-replica federation).

        No-op when telemetry is off, so the cluster can wire its replicas
        unconditionally.
        """
        if self.telemetry is not None:
            self.telemetry.add_source(name, fn, **labels)

    def note_fault_plan(self, plan) -> None:
        """Record the armed fault windows for the merged timeline."""
        for fault in getattr(plan, "faults", ()):
            end = fault.end
            if end == float("inf"):
                continue  # open-ended window: nothing sensible to draw
            self._fault_windows.append((fault.describe(), fault.start, end))

    def _observe_latencies(self, event) -> None:
        """Stream raw latency/queue-wait observations into the store."""
        store = self.telemetry
        if store is None:
            return
        if isinstance(event, BatchCompleted):
            for lat in event.latencies_us:
                store.observe("repro_request_latency_ms", event.time_us, lat / 1e3)
        elif isinstance(event, BatchDispatched) and event.first:
            for wait in event.queue_waits_us:
                store.observe("repro_request_queue_wait_ms", event.time_us, wait / 1e3)

    def arm(self, engine) -> None:
        """Start the sampling heartbeat (idempotent).

        Sampling rides :meth:`~repro.sim.engine.Engine.heartbeat`, so it
        quiesces with the run and never keeps an idle engine alive.  The
        heartbeat is read-only: gauge snapshots, store pumping and SLO
        evaluation never touch the schedule.
        """
        if self._armed:
            return
        self._armed = True
        self.registry.sample_gauges(engine.now)

        def _sample() -> None:
            self.registry.sample_gauges(engine.now)
            if self.telemetry is not None:
                self.telemetry.pump(self.registry, engine.now)
            if self.slo is not None:
                self.slo.evaluate(engine.now)

        engine.heartbeat(self.sample_period_us, _sample, priority=9)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def events(self):
        """All retained events, in publish order."""
        return self.bus.events

    def spans(self) -> List[RequestSpan]:
        """Per-request spans reconstructed so far."""
        return self.spans_builder.spans()

    @property
    def fault_windows(self) -> List[Tuple[str, float, float]]:
        return list(self._fault_windows)

    def fast_burn_advisor(self) -> Optional[Callable[[], bool]]:
        """The advisory callable for the router/breaker, if SLOs are armed."""
        if self.slo is None:
            return None
        return self.slo.under_fast_burn

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition of every registered metric."""
        return self.registry.to_prometheus()

    def save_prometheus(self, path: str) -> None:
        """Write the Prometheus text exposition to ``path``."""
        self.registry.save_prometheus(path)

    def save_series(self, path: str) -> None:
        """Write the windowed series (``.prom`` or JSON by extension)."""
        if self.telemetry is None:
            raise ConfigError("telemetry store not armed (set telemetry=True)")
        self.telemetry.save_series(path)

    def critical_path(self, trace=None, *, traces=()) -> CriticalPathReport:
        """Makespan attribution + critical-path walk over the timelines."""
        return analyze_critical_path(trace, traces=traces, spans=self.spans())

    def json_snapshot(self) -> dict:
        """Counters, gauges, histograms, heartbeat samples, span summary."""
        snap = self.registry.snapshot()
        snap["spans"] = [
            {
                "rid": s.rid,
                "state": s.state,
                "arrival_us": s.arrival_us,
                "end_us": s.end_us,
                "queue_wait_us": s.queue_wait_us,
                "segments": [
                    [seg.name, seg.start_us, seg.end_us] for seg in s.segments
                ],
            }
            for s in self.spans()
        ]
        snap["num_events"] = len(self.bus.events)
        return snap

    def save_snapshot(self, path: str) -> None:
        """Write :meth:`json_snapshot` as indented JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.json_snapshot(), fh, indent=2)

    def merged_chrome_trace(self, trace=None, *, traces=()) -> dict:
        """The merged timeline: request spans + kernel slices + instants.

        ``traces`` takes labelled ``(label, Trace)`` pairs — the cluster's
        per-replica timelines — rendered with ``pid`` ``"<label>:gpuN"``.
        """
        return merged_chrome_trace(
            spans=self.spans(),
            events=self.bus.events,
            trace=trace,
            traces=traces,
            fault_windows=self._fault_windows,
        )

    def save_merged_trace(self, path: str, trace=None, *, traces=()) -> dict:
        """Write the merged trace JSON; returns the per-class event counts."""
        obj = self.merged_chrome_trace(trace=trace, traces=traces)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(obj, fh)
        return validate_merged_trace(obj)
