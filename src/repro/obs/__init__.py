"""repro.obs — the unified observability layer.

Five pieces, all derived from one structured event stream:

* :mod:`repro.obs.events` — typed events with sim-timestamps for every
  serving-layer decision (admission, dispatch, shed, preemption, retry,
  breaker, strategy change, Principle-1 violation, replica lifecycle,
  SLO alerts) on a synchronous :class:`~repro.obs.events.EventBus`;
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms that
  re-derives the :class:`~repro.serving.metrics.ServingMetrics` aggregates
  from the bus and exports Prometheus text plus JSON snapshots;
* :mod:`repro.obs.telemetry` — a ring of sim-timestamped windows every
  registry metric samples into on the heartbeat, with per-replica label
  federation and windowed rate/percentile queries;
* :mod:`repro.obs.slo` — declarative :class:`~repro.obs.slo.SloPolicy`
  objectives evaluated per window into multi-window burn-rate alerts,
  surfaced as typed events, counters, timeline instants, and an advisory
  signal for the router and the overload breaker;
* :mod:`repro.obs.spans` / :mod:`repro.obs.export` /
  :mod:`repro.obs.analysis` — per-request spans, the merged
  Chrome/Perfetto timeline, and the critical-path analyzer that
  attributes the makespan to compute/comm/idle/contention per GPU.

The front door is :class:`~repro.obs.observability.Observability`,
configured by :class:`~repro.obs.observability.ObservabilityConfig`; pass
one to ``serve(..., observability=obs)`` or a ``Server``/``LifecycleServer``.
A server without one publishes nothing and behaves bit-identically to a
build without this subsystem.
"""

from repro.obs.analysis import (
    CriticalPathReport,
    GpuAttribution,
    PathSegment,
    analyze_critical_path,
)
from repro.obs.events import (
    BatchCompleted,
    BatchDispatched,
    BatchPreempted,
    BatchStaged,
    BreakerClosed,
    BreakerOpened,
    Event,
    EventBus,
    NodeCrashed,
    NodeRecovered,
    Principle1Violation,
    RequestsAdmitted,
    RequestsShed,
    RequestsTimedOut,
    RetryScheduled,
    SloAlertResolved,
    SloBurnRateAlert,
    StrategyDowngraded,
    StrategyUpgraded,
)
from repro.obs.export import merged_chrome_trace, validate_merged_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observability import Observability, ObservabilityConfig
from repro.obs.slo import BurnRule, SloEngine, SloPolicy
from repro.obs.spans import RequestSpan, SpanBuilder, SpanSegment
from repro.obs.telemetry import TimeSeriesStore

__all__ = [
    "Event",
    "EventBus",
    "RequestsAdmitted",
    "RequestsShed",
    "RequestsTimedOut",
    "BatchStaged",
    "BatchDispatched",
    "BatchPreempted",
    "BatchCompleted",
    "RetryScheduled",
    "BreakerOpened",
    "BreakerClosed",
    "StrategyDowngraded",
    "StrategyUpgraded",
    "Principle1Violation",
    "NodeCrashed",
    "NodeRecovered",
    "SloBurnRateAlert",
    "SloAlertResolved",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeriesStore",
    "BurnRule",
    "SloPolicy",
    "SloEngine",
    "SpanSegment",
    "RequestSpan",
    "SpanBuilder",
    "merged_chrome_trace",
    "validate_merged_trace",
    "CriticalPathReport",
    "GpuAttribution",
    "PathSegment",
    "analyze_critical_path",
    "Observability",
    "ObservabilityConfig",
]
