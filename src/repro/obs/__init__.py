"""repro.obs — the unified observability layer.

Three pieces, all derived from one structured event stream:

* :mod:`repro.obs.events` — typed events with sim-timestamps for every
  serving-layer decision (admission, dispatch, shed, preemption, retry,
  breaker, strategy change, Principle-1 violation) on a synchronous
  :class:`~repro.obs.events.EventBus`;
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms that
  re-derives the :class:`~repro.serving.metrics.ServingMetrics` aggregates
  from the bus and exports Prometheus text plus JSON snapshots;
* :mod:`repro.obs.spans` / :mod:`repro.obs.export` — per-request spans and
  the merged Chrome/Perfetto timeline interleaving them with kernel slices
  and control instants.

The front door is :class:`~repro.obs.observability.Observability`; pass one
to ``serve(..., observability=obs)`` or a ``Server``/``LifecycleServer``.
A server without one publishes nothing and behaves bit-identically to a
build without this subsystem.
"""

from repro.obs.events import (
    BatchCompleted,
    BatchDispatched,
    BatchPreempted,
    BatchStaged,
    BreakerClosed,
    BreakerOpened,
    Event,
    EventBus,
    Principle1Violation,
    RequestsAdmitted,
    RequestsShed,
    RequestsTimedOut,
    RetryScheduled,
    StrategyDowngraded,
    StrategyUpgraded,
)
from repro.obs.export import merged_chrome_trace, validate_merged_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observability import Observability
from repro.obs.spans import RequestSpan, SpanBuilder, SpanSegment

__all__ = [
    "Event",
    "EventBus",
    "RequestsAdmitted",
    "RequestsShed",
    "RequestsTimedOut",
    "BatchStaged",
    "BatchDispatched",
    "BatchPreempted",
    "BatchCompleted",
    "RetryScheduled",
    "BreakerOpened",
    "BreakerClosed",
    "StrategyDowngraded",
    "StrategyUpgraded",
    "Principle1Violation",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanSegment",
    "RequestSpan",
    "SpanBuilder",
    "merged_chrome_trace",
    "validate_merged_trace",
    "Observability",
]
