"""One merged Chrome/Perfetto timeline: kernels + request spans + instants.

The paper's claims are timeline claims — overlap of comm and compute
kernels (Fig. 10), comm-time fraction (Fig. 3), Principle-1 windows (§3.5)
— and the serving story on top of them (queueing, shedding, preemption,
breaker trips) only makes sense on the *same* axis.  This module interleaves
three event classes into one ``traceEvents`` array that Perfetto /
``chrome://tracing`` loads directly:

* **kernel slices** — ``ph: "X"`` rows from the simulator's
  :class:`~repro.sim.tracing.Trace`, one process per GPU (unchanged from
  ``Trace.to_chrome_trace``);
* **request spans** — ``ph: "X"`` rows from the span builder, process
  ``requests``, one thread per request, segments named
  ``queued``/``prefill``/``decode``;
* **control instants** — ``ph: "i"`` markers on process ``serving`` for
  every shed, timeout, preemption, retry, breaker transition, strategy
  change, and Principle-1 violation, plus ``X`` rows for the armed fault
  windows.

Timestamps are simulation microseconds throughout, which is exactly the
unit the Chrome trace format expects.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.events import Event
from repro.obs.spans import RequestSpan

__all__ = [
    "span_chrome_events",
    "instant_chrome_events",
    "fault_window_chrome_events",
    "merged_chrome_trace",
    "validate_merged_trace",
]

#: Event kinds rendered as control instants on the merged timeline.
INSTANT_KINDS = frozenset(
    {
        "shed",
        "timed-out",
        "preempted",
        "retry",
        "breaker-open",
        "breaker-closed",
        "downgrade",
        "upgrade",
        "principle1-violation",
        "node-health",
        "failover",
        "node-crash",
        "node-recover",
        "slo-burn-alert",
        "slo-alert-resolved",
    }
)

_SPAN_PID = "requests"
_CONTROL_PID = "serving"


def span_chrome_events(spans: Sequence[RequestSpan]) -> List[dict]:
    """Duration rows for every request-span segment, one thread per request."""
    events: List[dict] = []
    for span in spans:
        tid = f"req{span.rid}"
        for seg in span.segments:
            events.append(
                {
                    "name": seg.name,
                    "cat": "request",
                    "ph": "X",
                    "ts": seg.start_us,
                    "dur": seg.duration_us,
                    "pid": _SPAN_PID,
                    "tid": tid,
                    "args": {
                        "rid": span.rid,
                        "state": span.state,
                        "batches": span.batch_ids,
                    },
                }
            )
    return events


def instant_chrome_events(events: Iterable[Event]) -> List[dict]:
    """Instant markers for the control-plane events (sheds, trips, ...)."""
    out: List[dict] = []
    for ev in events:
        if ev.kind not in INSTANT_KINDS:
            continue
        args = ev.to_dict()
        args.pop("kind", None)
        args.pop("time_us", None)
        out.append(
            {
                "name": ev.kind,
                "cat": "control",
                "ph": "i",
                "ts": ev.time_us,
                "pid": _CONTROL_PID,
                "tid": "control",
                "s": "p",
                "args": args,
            }
        )
    return out


def fault_window_chrome_events(
    windows: Sequence[Tuple[str, float, float]]
) -> List[dict]:
    """Duration rows for armed fault windows (name, start_us, end_us)."""
    events: List[dict] = []
    for name, start, end in windows:
        if end <= start:
            raise ConfigError(f"fault window {name!r}: empty span [{start}, {end})")
        events.append(
            {
                "name": name,
                "cat": "control",
                "ph": "X",
                "ts": start,
                "dur": end - start,
                "pid": _CONTROL_PID,
                "tid": "faults",
                "args": {},
            }
        )
    return events


def merged_chrome_trace(
    *,
    spans: Sequence[RequestSpan] = (),
    events: Iterable[Event] = (),
    trace=None,
    traces: Sequence[Tuple[str, object]] = (),
    fault_windows: Sequence[Tuple[str, float, float]] = (),
) -> Dict[str, object]:
    """Build the merged trace object (call ``json.dumps`` to serialize).

    ``trace`` is an optional :class:`~repro.sim.tracing.Trace`; kernel
    slices are taken from its :meth:`~repro.sim.tracing.Trace.chrome_events`.
    ``traces`` holds additional labelled traces — the cluster layer passes
    ``[("node0", t0), ("node1", t1), ...]`` — whose kernel rows get their
    ``pid`` prefixed ``"<label>:gpuN"`` so replicas stay distinguishable on
    one timeline.
    """
    rows: List[dict] = []
    if trace is not None:
        rows.extend(trace.chrome_events())
    for label, t in traces:
        for row in t.chrome_events():
            row = dict(row)
            row["pid"] = f"{label}:{row['pid']}"
            rows.append(row)
    rows.extend(span_chrome_events(spans))
    rows.extend(instant_chrome_events(events))
    rows.extend(fault_window_chrome_events(fault_windows))
    rows.sort(key=lambda e: (e["ts"], str(e["pid"]), str(e["tid"])))
    return {"traceEvents": rows, "displayTimeUnit": "ms"}


def validate_merged_trace(obj) -> Dict[str, int]:
    """Check a merged trace parses into the three event classes.

    Accepts the trace as a dict (already parsed) or a JSON string.  Returns
    counts per class — ``kernel`` (GPU slices), ``span`` (request
    segments), ``instant`` (control markers) — and raises
    :class:`~repro.errors.ConfigError` on malformed input.  Used by the
    example, the CI job, and the golden tests.
    """
    if isinstance(obj, (str, bytes)):
        obj = json.loads(obj)
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ConfigError("not a Chrome trace: missing 'traceEvents'")
    counts = {"kernel": 0, "span": 0, "instant": 0, "fault": 0}
    for row in obj["traceEvents"]:
        for key in ("name", "ph", "ts", "pid"):
            if key not in row:
                raise ConfigError(f"trace event missing {key!r}: {row!r}")
        pid = str(row["pid"])
        if pid.startswith("gpu") or ":gpu" in pid:
            counts["kernel"] += 1
        elif pid == _SPAN_PID:
            counts["span"] += 1
        elif pid == _CONTROL_PID and row["ph"] == "i":
            counts["instant"] += 1
        elif pid == _CONTROL_PID:
            counts["fault"] += 1
    return counts
