"""Engine-level progress watchdog: turn wedges into diagnoses.

The simulator already detects *drained* deadlocks (the event queue empties
while streams still hold work — :class:`~repro.errors.DeadlockError` from
``Machine.run``).  What it cannot detect on its own is a **livelock**: time
keeps advancing (completion timers pushed ever further out by an injected
fault, retry loops, a pathological contention model) but no kernel ever
retires.  On real serving infrastructure that is the worst failure mode —
the process looks alive while every request ages out.

The watchdog rides the engine's heartbeat: every ``interval`` µs it compares
``machine.kernels_completed`` against the last observation.  An *idle*
machine is healthy (there is simply nothing to run); a *busy* machine that
completes nothing for longer than ``stall_timeout`` µs trips the watchdog,
which raises a :class:`~repro.errors.DeadlockError` naming the stuck
streams, ready kernels, and half-assembled collectives — plus any context
the caller registered (e.g. open batch ids from the serving layer).

Because the heartbeat auto-stops when it is the only live event, an armed
watchdog never keeps a finished simulation alive.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ConfigError, DeadlockError
from repro.sim.gpu import Machine

__all__ = ["Watchdog"]


class Watchdog:
    """Progress monitor for one machine.

    Parameters
    ----------
    machine:
        The machine to observe.
    stall_timeout:
        Longest tolerated span (µs) in which a busy machine completes no
        kernel before the watchdog trips.
    interval:
        Heartbeat period (µs); defaults to a quarter of the stall timeout.
    context:
        Optional callable returning extra diagnostic lines (the serving
        layer passes open batch ids).
    """

    def __init__(
        self,
        machine: Machine,
        *,
        stall_timeout: float = 400_000.0,
        interval: Optional[float] = None,
        context: Optional[Callable[[], List[str]]] = None,
    ) -> None:
        if stall_timeout <= 0:
            raise ConfigError(f"stall_timeout must be > 0, got {stall_timeout}")
        self.machine = machine
        self.stall_timeout = stall_timeout
        self.interval = interval if interval is not None else stall_timeout / 4.0
        if self.interval <= 0:
            raise ConfigError(f"watchdog interval must be > 0, got {self.interval}")
        self.context = context
        self.tripped = False
        self.checks = 0
        self._armed = False
        self._last_completed = -1
        self._last_progress_at = 0.0

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Start the heartbeat (idempotent; call after work is scheduled)."""
        if self._armed:
            return
        self._armed = True
        self._last_completed = self.machine.kernels_completed
        self._last_progress_at = self.machine.engine.now
        self.machine.engine.heartbeat(self.interval, self._check)

    # ------------------------------------------------------------------
    def _check(self) -> bool:
        m = self.machine
        now = m.engine.now
        self.checks += 1
        if m.kernels_completed != self._last_completed or m.all_idle():
            self._last_completed = m.kernels_completed
            self._last_progress_at = now
            return True
        if now - self._last_progress_at >= self.stall_timeout - 1e-9:
            self.tripped = True
            stuck = m.stuck_summary()
            if self.context is not None:
                stuck += self.context()
            raise DeadlockError(
                f"watchdog: no kernel completed for "
                f"{now - self._last_progress_at:.0f}us (limit "
                f"{self.stall_timeout:.0f}us) while work is pending: "
                + "; ".join(stuck[:8])
            )
        return True
