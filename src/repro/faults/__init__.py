"""Fault injection and graceful recovery for the Liger reproduction.

Production inference violates the assumptions Liger's schedule is built on:
GPUs throttle, links degrade, launches fail, hosts jitter.  This package
makes those conditions first-class — deterministically injectable, observable,
and survivable:

* :mod:`repro.faults.plan` — declarative fault windows
  (:class:`GpuStraggler`, :class:`LinkDegradation`, :class:`LaunchFailure`,
  :class:`HostJitter`, plus the cluster-level :class:`NodeCrash`,
  :class:`NetworkPartition`, and :class:`NodeDegradation`) grouped in a
  :class:`FaultPlan`.
* :mod:`repro.faults.injector` — :class:`FaultInjector` binds a plan to a
  machine's hook sites (kernel rates, interconnect bandwidth, launch path).
* :mod:`repro.faults.watchdog` — :class:`Watchdog` turns livelocks into
  diagnostic :class:`~repro.errors.DeadlockError`.
* :mod:`repro.faults.monitor` — :class:`PrincipleMonitor` detects executed
  rounds whose secondary subset outlived the primary (Principle 1, §3.5).
* :mod:`repro.faults.resilience` — :class:`RecoveryManager` applies retry
  with backoff, strategy degradation, and recovery probing, summarised in a
  :class:`ResilienceReport`.

Typical use goes through the serving layer::

    from repro import serve, FaultPlan, GpuStraggler
    result = serve(model, node, strategy="liger",
                   fault_plan=FaultPlan([GpuStraggler(start=0, end=50_000,
                                                      gpu=1, factor=3.0)]))
    print(result.resilience.describe())
"""

from repro.faults.injector import FaultInjector
from repro.faults.monitor import PrincipleMonitor
from repro.faults.plan import (
    Fault,
    FaultPlan,
    GpuStraggler,
    HostJitter,
    LaunchFailure,
    LinkDegradation,
    NetworkPartition,
    NodeCrash,
    NodeDegradation,
    plan_from_specs,
)
from repro.faults.resilience import (
    ClusterResilienceReport,
    RecoveryManager,
    ReplicaAction,
    ReplicaRecovery,
    ReplicaRecoveryConfig,
    ResilienceConfig,
    ResilienceReport,
    StrategyChange,
)
from repro.faults.watchdog import Watchdog

__all__ = [
    "Fault",
    "FaultPlan",
    "GpuStraggler",
    "LinkDegradation",
    "LaunchFailure",
    "HostJitter",
    "NodeCrash",
    "NetworkPartition",
    "NodeDegradation",
    "plan_from_specs",
    "FaultInjector",
    "PrincipleMonitor",
    "Watchdog",
    "RecoveryManager",
    "ReplicaAction",
    "ReplicaRecovery",
    "ReplicaRecoveryConfig",
    "ResilienceConfig",
    "ResilienceReport",
    "ClusterResilienceReport",
    "StrategyChange",
]
