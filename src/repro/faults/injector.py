"""Binding a :class:`~repro.faults.plan.FaultPlan` to a running machine.

The injector is the only object the simulator hooks ever see.  It answers
point queries ("how inflated is this kernel right now?", "does this launch
fail?") by evaluating the plan at the engine's current time, and it owns the
boundary bookkeeping: at every fault-window edge it re-banks kernel progress
(:meth:`~repro.sim.gpu.Machine.refresh_rates`) so a fault that activates
mid-kernel stretches only the *remaining* portion — the same piecewise
integration the contention model uses.

Zero-cost contract: an unarmed machine (``machine.fault_injector is None``)
executes no fault code at all, and an armed injector with an empty plan
returns neutral factors everywhere, so fault support never perturbs a
healthy run.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.errors import ConfigError, FaultError
from repro.faults.plan import FaultPlan
from repro.sim.gpu import Machine
from repro.sim.interconnect import CollectiveCostModel
from repro.sim.kernel import Kernel
from repro.sim.stream import Stream

__all__ = ["FaultInjector"]


class FaultInjector:
    """Evaluates a fault plan against a machine's clock and hook sites.

    Counters (``launch_attempts``, ``launch_failures``, ``jittered_commands``)
    feed the :class:`~repro.faults.resilience.ResilienceReport`.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self.machine: Optional[Machine] = None
        self.launch_attempts = 0
        self.launch_failures = 0
        self.jittered_commands = 0
        self._jitter_seq = 0

    # ------------------------------------------------------------------
    def arm(
        self,
        machine: Machine,
        cost_models: Iterable[CollectiveCostModel] = (),
    ) -> None:
        """Attach to ``machine`` and wire the interconnect cost models.

        Schedules one rate-refresh event per fault-window boundary so
        in-flight kernels re-integrate at the new factors the instant a
        fault activates or clears.
        """
        if self.machine is not None:
            raise ConfigError("fault injector is already armed")
        for fault in self.plan.stragglers:
            if not 0 <= fault.gpu < len(machine.gpus):
                raise ConfigError(
                    f"straggler targets GPU {fault.gpu} but the machine has "
                    f"{len(machine.gpus)} GPUs (0..{len(machine.gpus) - 1})"
                )
        self.machine = machine
        machine.fault_injector = self
        for ccm in cost_models:
            ccm.bandwidth_scale = self._bandwidth_scale
        now = machine.engine.now
        for t in self.plan.boundaries():
            if t > now:
                machine.engine.schedule_at(t, machine.refresh_rates, priority=3)

    def _require_armed(self) -> Machine:
        if self.machine is None:
            raise ConfigError("fault injector used before arm()")
        return self.machine

    @property
    def now(self) -> float:
        """The armed machine's current simulation time."""
        return self._require_armed().engine.now

    def any_active(self, now: Optional[float] = None) -> bool:
        """True when at least one fault window covers ``now`` (default: now)."""
        return bool(self.plan.active(self.now if now is None else now))

    def describe_active(self) -> List[str]:
        """Descriptions of the currently active faults."""
        return [f.describe() for f in self.plan.active(self.now)]

    # ------------------------------------------------------------------
    # Hook sites (called from repro.sim when armed)
    # ------------------------------------------------------------------
    def kernel_inflation(self, kernel: Kernel, gpu_id: int) -> float:
        """Multiplicative slowdown a fault imposes on one resident kernel.

        Stragglers inflate compute-like kernels only: an SM-clock throttle
        stretches arithmetic but leaves bandwidth-bound collective members
        (whose pace the link sets) untouched.
        """
        if kernel.kind.is_comm:
            return 1.0
        return self.plan.compute_inflation(gpu_id, self.now)

    def submit_delay(self, stream: Stream) -> float:
        """Extra visibility delay (µs) for a command submitted on ``stream``."""
        delay = self.plan.host_jitter(self.now, self._jitter_seq)
        if delay > 0.0:
            self._jitter_seq += 1
            self.jittered_commands += 1
        return delay

    def _bandwidth_scale(self) -> float:
        """Interconnect hook: current fraction of nominal bandwidth."""
        return self.plan.bandwidth_fraction(self.now)

    def check_launch(self, batch_id: int) -> None:
        """Raise :class:`FaultError` when a launch-failure window is active.

        Called by the recovery layer before handing a batch to a strategy —
        the simulated analogue of the CUDA launch returning an error.
        """
        self.launch_attempts += 1
        if self.plan.launch_failing(self.now):
            self.launch_failures += 1
            raise FaultError(
                f"injected transient launch failure for batch {batch_id} "
                f"at t={self.now:.1f}us"
            )
