"""Recovery policy: retry, shed, degrade, and re-probe.

This module turns the raw fault machinery (:mod:`repro.faults.injector`,
:mod:`repro.faults.watchdog`, :mod:`repro.faults.monitor`) into serving-level
behaviour.  The :class:`RecoveryManager` sits between the server's arrival
loop and the bound strategy and applies three policies:

1. **Retry with exponential backoff** — a batch submission that hits an
   injected :class:`~repro.errors.FaultError` (transient launch failure) is
   re-attempted after ``retry_backoff_us · backoff_multiplier^attempt`` µs.
   A batch that exhausts ``max_retries`` is *shed* (counted, dropped) or, if
   shedding is disabled, surfaces as
   :class:`~repro.errors.RetryExhaustedError`.
2. **Graceful strategy degradation** — when the Principle-1 monitor counts
   ``violation_threshold`` executed-round violations, interleaving is no
   longer paying for itself: the manager *downgrades*, routing subsequent
   batches to the plain intra-op fallback strategy (which shares the machine
   but never overlaps, so a straggler merely slows it — it cannot break it).
   In-flight interleaved batches drain normally.
3. **Recovery probing** — while degraded, a heartbeat probes the fault plan
   every ``recovery_probe_us`` µs; once no fault window is active the manager
   *upgrades* back to the primary strategy and records the recovery time.

Every decision is appended to the :class:`ResilienceReport`, the single
artifact a post-mortem needs: strategy changes, retry/shed counts, violation
and watchdog statistics, and the faults that were active.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigError, FaultError, RetryExhaustedError
from repro.faults.injector import FaultInjector
from repro.faults.monitor import PrincipleMonitor
from repro.faults.watchdog import Watchdog
from repro.obs.events import (
    EventBus,
    Principle1Violation,
    RequestsShed,
    RetryScheduled,
    StrategyDowngraded,
    StrategyUpgraded,
)
from repro.parallel.base import ParallelStrategy
from repro.serving.request import Batch

logger = logging.getLogger("repro.faults.resilience")

__all__ = [
    "ResilienceConfig",
    "StrategyChange",
    "ResilienceReport",
    "RecoveryManager",
    "attach_recovery",
    "ReplicaRecoveryConfig",
    "ReplicaAction",
    "ClusterResilienceReport",
    "ReplicaRecovery",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunable knobs of the recovery policy (times in µs)."""

    #: Executed-round Principle-1 violations tolerated before downgrading.
    violation_threshold: int = 3
    #: Secondary overshoot tolerated as a fraction of the round window.
    margin_frac: float = 0.10
    #: Absolute overshoot floor below which no violation is counted.
    min_margin_us: float = 10.0
    #: Probe period while degraded: how often to check whether faults cleared.
    recovery_probe_us: float = 20_000.0
    #: Launch retries per batch before shedding/raising.
    max_retries: int = 5
    #: First retry delay; grows by ``backoff_multiplier`` per attempt.
    retry_backoff_us: float = 200.0
    backoff_multiplier: float = 2.0
    #: Shed a retry-exhausted batch (True) or raise RetryExhaustedError.
    shed_on_exhaustion: bool = True
    #: Arm the livelock watchdog for the run.
    enable_watchdog: bool = True
    watchdog_stall_us: float = 400_000.0
    #: Heartbeat period; None → a quarter of the stall timeout.
    watchdog_interval_us: Optional[float] = None
    #: Allow downgrading to the fallback strategy at all.
    enable_fallback: bool = True

    def __post_init__(self) -> None:
        if self.violation_threshold < 1:
            raise ConfigError(
                f"violation_threshold must be >= 1, got {self.violation_threshold}"
            )
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_us <= 0 or self.backoff_multiplier < 1.0:
            raise ConfigError("retry backoff must be > 0 with multiplier >= 1")
        if self.recovery_probe_us <= 0:
            raise ConfigError(
                f"recovery_probe_us must be > 0, got {self.recovery_probe_us}"
            )


@dataclass(frozen=True)
class StrategyChange:
    """One recorded strategy transition (downgrade or upgrade)."""

    kind: str  #: ``"downgrade"`` or ``"upgrade"``
    time_us: float  #: simulation time of the transition
    strategy: str  #: name of the strategy active *after* the change
    reason: str  #: human-readable trigger

    def describe(self) -> str:
        """One-line rendering for the report."""
        return f"t={self.time_us:.0f}us {self.kind} -> {self.strategy}: {self.reason}"


@dataclass
class ResilienceReport:
    """What the recovery layer did during one serving run."""

    faults: List[str] = field(default_factory=list)
    changes: List[StrategyChange] = field(default_factory=list)
    downgrades: int = 0
    #: Subset of ``downgrades`` triggered by overload backpressure rather
    #: than Principle-1 violations.
    overload_downgrades: int = 0
    upgrades: int = 0
    recovery_times_us: List[float] = field(default_factory=list)
    retries: int = 0
    shed_batches: List[int] = field(default_factory=list)
    batches_on_fallback: int = 0
    violations: int = 0
    rounds_observed: int = 0
    launch_attempts: int = 0
    launch_failures: int = 0
    jittered_commands: int = 0
    watchdog_checks: int = 0
    watchdog_tripped: bool = False

    @property
    def recovered(self) -> bool:
        """True when every downgrade was followed by an upgrade."""
        return self.downgrades > 0 and self.upgrades == self.downgrades

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = ["resilience report:"]
        lines.append(
            f"  faults injected: {', '.join(self.faults) if self.faults else 'none'}"
        )
        lines.append(
            f"  principle-1: {self.violations} violation(s) over "
            f"{self.rounds_observed} executed round(s)"
        )
        lines.append(
            f"  strategy: {self.downgrades} downgrade(s), {self.upgrades} "
            f"upgrade(s), {self.batches_on_fallback} batch(es) served on fallback"
        )
        for change in self.changes:
            lines.append(f"    {change.describe()}")
        for rt in self.recovery_times_us:
            lines.append(f"  recovery time: {rt / 1e3:.1f} ms")
        lines.append(
            f"  launches: {self.launch_attempts} attempt(s), "
            f"{self.launch_failures} injected failure(s), {self.retries} "
            f"retr{'y' if self.retries == 1 else 'ies'}, "
            f"{len(self.shed_batches)} shed batch(es)"
        )
        if self.jittered_commands:
            lines.append(f"  host jitter: {self.jittered_commands} command(s) delayed")
        lines.append(
            f"  watchdog: {self.watchdog_checks} check(s), "
            f"{'TRIPPED' if self.watchdog_tripped else 'clean'}"
        )
        return "\n".join(lines)


class RecoveryManager:
    """Routes submissions through retry/degradation policy for one server.

    Parameters
    ----------
    injector:
        Armed fault injector (its machine is the serving machine).
    primary:
        The bound strategy the server was configured with.
    fallback:
        Optional bound degradation target (plain intra-op).  ``None`` — or
        ``enable_fallback=False`` — disables downgrading; violations are
        still counted.
    config:
        Policy knobs; defaults are sized for the bundled scenarios.
    metrics:
        Optional :class:`~repro.serving.metrics.ServingMetrics` whose
        ``retries``/``shed_requests`` counters are kept in sync.
    """

    def __init__(
        self,
        injector: FaultInjector,
        primary: ParallelStrategy,
        *,
        fallback: Optional[ParallelStrategy] = None,
        config: Optional[ResilienceConfig] = None,
        metrics=None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.config = config or ResilienceConfig()
        self.injector = injector
        self.primary = primary
        self.fallback = fallback if self.config.enable_fallback else None
        self.metrics = metrics
        self.bus = bus
        self.machine = injector._require_armed()
        self.report = ResilienceReport(
            faults=[f.describe() for f in injector.plan.faults]
        )
        self.degraded = False
        self._degraded_since = 0.0
        self._violations_since_ok = 0
        self._finalized = False
        #: Optional observer called with each shed batch — servers that keep
        #: their own per-batch state (the lifecycle server) clean it up here.
        self.on_shed = None
        #: Optional predicate holding the upgrade probe back even when no
        #: fault window is active — the overload layer parks the run on the
        #: fallback until its queue has drained (upgrading into a still-full
        #: queue would immediately re-trip the breaker).
        self.hold_upgrade: Optional[Callable[[], bool]] = None
        # Principle-1 monitoring needs the Liger runtime's round hook.
        runtime = getattr(primary, "runtime", None)
        self.monitor: Optional[PrincipleMonitor] = None
        if runtime is not None:
            self.monitor = PrincipleMonitor(
                self.machine,
                margin_frac=self.config.margin_frac,
                min_margin=self.config.min_margin_us,
                on_violation=self._on_violation,
            )
            self.monitor.attach(runtime)
        self.watchdog: Optional[Watchdog] = None
        if self.config.enable_watchdog:
            self.watchdog = Watchdog(
                self.machine,
                stall_timeout=self.config.watchdog_stall_us,
                interval=self.config.watchdog_interval_us,
                context=self._watchdog_context,
            )

    # ------------------------------------------------------------------
    # Server integration
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Start the watchdog heartbeat (call once work is scheduled)."""
        if self.watchdog is not None:
            self.watchdog.arm()

    @property
    def active_strategy(self) -> ParallelStrategy:
        """The strategy new batches are currently routed to."""
        if self.degraded and self.fallback is not None:
            return self.fallback
        return self.primary

    def open_batch_ids(self) -> List[int]:
        """Batch ids submitted but not yet completed (for diagnostics)."""
        ids = set(self.primary.open_batch_ids())
        if self.fallback is not None:
            ids.update(self.fallback.open_batch_ids())
        return sorted(ids)

    def _watchdog_context(self) -> List[str]:
        open_ids = self.open_batch_ids()
        lines = [f"open batches: {open_ids if open_ids else 'none'}"]
        active = self.injector.describe_active()
        if active:
            lines.append(f"active faults: {', '.join(active)}")
        return lines

    # ------------------------------------------------------------------
    # Submission path: retry/backoff then route
    # ------------------------------------------------------------------
    def submit(self, batch: Batch) -> None:
        """Submit ``batch`` under the retry/degradation policy."""
        self._attempt(batch, 0)

    def _attempt(self, batch: Batch, attempt: int) -> None:
        try:
            self.injector.check_launch(batch.batch_id)
        except FaultError as exc:
            self._on_launch_failure(batch, attempt, exc)
            return
        strategy = self.active_strategy
        if strategy is not self.primary:
            self.report.batches_on_fallback += 1
        strategy.submit_batch(batch)

    def _on_launch_failure(
        self, batch: Batch, attempt: int, exc: FaultError
    ) -> None:
        cfg = self.config
        if attempt >= cfg.max_retries:
            if cfg.shed_on_exhaustion:
                self._shed(batch)
                return
            raise RetryExhaustedError(
                f"batch {batch.batch_id} failed to launch after "
                f"{attempt + 1} attempt(s): {exc}"
            ) from exc
        delay = cfg.retry_backoff_us * (cfg.backoff_multiplier ** attempt)
        self.report.retries += 1
        if self.metrics is not None:
            self.metrics.retries += 1
        now = self.machine.engine.now
        logger.info(
            "t=%.0fus batch %d launch failed (attempt %d), retrying in %.0fus",
            now,
            batch.batch_id,
            attempt + 1,
            delay,
        )
        if self.bus is not None:
            self.bus.publish(
                RetryScheduled(
                    time_us=now,
                    batch_id=batch.batch_id,
                    attempt=attempt + 1,
                    delay_us=delay,
                )
            )
        self.machine.engine.schedule(
            delay, lambda: self._attempt(batch, attempt + 1), priority=10
        )

    def _shed(self, batch: Batch) -> None:
        self.report.shed_batches.append(batch.batch_id)
        now = self.machine.engine.now
        logger.warning(
            "t=%.0fus batch %d shed after exhausting retries",
            now,
            batch.batch_id,
        )
        if self.metrics is not None:
            batch.shed()  # terminal state: nothing is dropped silently
            self.metrics.note_shed(batch.requests)
            if self.bus is not None:
                self.bus.publish(
                    RequestsShed.from_requests(
                        batch.requests,
                        now,
                        batch_id=batch.batch_id,
                        where="retry-exhausted",
                    )
                )
        if self.on_shed is not None:
            self.on_shed(batch)

    # ------------------------------------------------------------------
    # Degradation and recovery
    # ------------------------------------------------------------------
    def _on_violation(self, round_index: int, overshoot: float, time: float) -> None:
        self._violations_since_ok += 1
        if self.bus is not None:
            self.bus.publish(
                Principle1Violation(
                    time_us=time, round_index=round_index, overshoot_us=overshoot
                )
            )
        if self.degraded or self.fallback is None:
            return
        if self._violations_since_ok >= self.config.violation_threshold:
            self._downgrade(
                time,
                f"round {round_index} secondary subset outlived its window by "
                f"{overshoot:.0f}us ({self._violations_since_ok} violations)",
            )

    def overload_downgrade(self, reason: str) -> bool:
        """Downgrade on a backpressure signal (queue depth / SLO misses).

        Called by the overload layer's circuit breaker; interleaving buys
        latency, not saturation throughput, so a saturated server is better
        off on the plain fallback.  Returns ``False`` when no fallback is
        configured or the run is already degraded.
        """
        if self.degraded or self.fallback is None:
            return False
        self.report.overload_downgrades += 1
        self._downgrade(self.machine.engine.now, reason, overload=True)
        return True

    def _downgrade(self, time: float, reason: str, *, overload: bool = False) -> None:
        assert self.fallback is not None
        self.degraded = True
        self._degraded_since = time
        self._violations_since_ok = 0
        self.report.downgrades += 1
        self.report.changes.append(
            StrategyChange("downgrade", time, self.fallback.name, reason)
        )
        logger.warning(
            "t=%.0fus strategy downgraded to %s: %s",
            time,
            self.fallback.name,
            reason,
        )
        if self.bus is not None:
            self.bus.publish(
                StrategyDowngraded(
                    time_us=time,
                    strategy=self.fallback.name,
                    reason=reason,
                    overload=overload,
                )
            )
        self.machine.engine.heartbeat(
            self.config.recovery_probe_us, self._probe, priority=8
        )

    def _probe(self) -> bool:
        if not self.degraded:
            return False
        if self.injector.any_active():
            return True
        if self.hold_upgrade is not None and self.hold_upgrade():
            return True  # overload layer: queue not drained yet
        now = self.machine.engine.now
        self.degraded = False
        self.report.upgrades += 1
        self.report.recovery_times_us.append(now - self._degraded_since)
        self.report.changes.append(
            StrategyChange(
                "upgrade", now, self.primary.name, "no fault window active"
            )
        )
        logger.info(
            "t=%.0fus strategy upgraded back to %s: no fault window active",
            now,
            self.primary.name,
        )
        if self.bus is not None:
            self.bus.publish(
                StrategyUpgraded(
                    time_us=now,
                    strategy=self.primary.name,
                    reason="no fault window active",
                )
            )
        return False

    # ------------------------------------------------------------------
    def finalize(self) -> ResilienceReport:
        """Fold the collaborators' counters into the report and return it."""
        if not self._finalized:
            self._finalized = True
            if self.monitor is not None:
                self.report.violations = self.monitor.violations
                self.report.rounds_observed = self.monitor.rounds_observed
            self.report.launch_attempts = self.injector.launch_attempts
            self.report.launch_failures = self.injector.launch_failures
            self.report.jittered_commands = self.injector.jittered_commands
            if self.watchdog is not None:
                self.report.watchdog_checks = self.watchdog.checks
                self.report.watchdog_tripped = self.watchdog.tripped
        return self.report


def attach_recovery(
    model,
    node,
    strategy: ParallelStrategy,
    machine,
    host,
    *,
    fault_plan=None,
    config: Optional[ResilienceConfig] = None,
    metrics=None,
    complete_callback=None,
    bus: Optional[EventBus] = None,
) -> RecoveryManager:
    """Build the full recovery stack around one bound strategy.

    Arms a :class:`~repro.faults.injector.FaultInjector` on the machine
    (wiring the strategy's collective cost model for link degradation) and —
    when the strategy carries a Liger runtime and the config allows it —
    binds a plain intra-op fallback on the *same* machine as the degradation
    target.  The fallback shares the primary's profiler (one cost model to
    degrade) and skips memory tracking, since the caller already accounts
    for HBM.  Both servers route their construction through here.
    """
    from repro.parallel.intra_op import IntraOpStrategy

    cfg = config or ResilienceConfig()
    injector = FaultInjector(fault_plan)
    injector.arm(machine, cost_models=[strategy.profiler.collectives])
    fallback: Optional[ParallelStrategy] = None
    if cfg.enable_fallback and getattr(strategy, "runtime", None) is not None:
        fallback = IntraOpStrategy(
            model, node, profiler=strategy.profiler, track_memory=False
        )
        fallback.bind(machine, host)
        if complete_callback is not None:
            fallback.on_batch_complete(complete_callback)
    return RecoveryManager(
        injector, strategy, fallback=fallback, config=cfg, metrics=metrics, bus=bus
    )


# ----------------------------------------------------------------------
# Replica-level recovery (the cluster layer's policy core)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaRecoveryConfig:
    """Knobs of the replica-level recovery policy (times in µs).

    Where :class:`ResilienceConfig` governs what happens *inside* one
    serving session (retry a launch, downgrade a strategy), this config
    governs what the cluster router does *about* a whole replica: when to
    mark it unhealthy, whether to drain or fail over its in-flight work,
    how many re-dispatches one batch may consume, and when to re-admit the
    replica after recovery.
    """

    #: Health-probe period of the router's heartbeat sweep.
    health_check_period_us: float = 5_000.0
    #: Consecutive failed probes before a replica is marked unhealthy.
    unhealthy_after: int = 1
    #: Consecutive successful probes before an unhealthy replica is
    #: re-admitted into the dispatch set.
    readmit_after: int = 2
    #: Re-dispatch budget per batch: how many times failover may move it to
    #: another replica before it is shed.
    max_failovers: int = 2
    #: What to do with in-flight work on an *unreachable* (partitioned, not
    #: crashed) replica: ``False`` drains it in place — the replica is still
    #: executing and its completions still count — ``True`` re-dispatches it
    #: as if the replica had died (duplicate work; the completion gate keeps
    #: requests exactly-once either way).
    failover_on_unreachable: bool = False
    #: Shed immediately when no healthy replica can take a dispatch
    #: (``True``, the liveness-preserving default) instead of raising.
    shed_when_no_target: bool = True

    def __post_init__(self) -> None:
        if self.health_check_period_us <= 0:
            raise ConfigError(
                f"health_check_period_us must be > 0, got "
                f"{self.health_check_period_us}"
            )
        if self.unhealthy_after < 1:
            raise ConfigError(
                f"unhealthy_after must be >= 1, got {self.unhealthy_after}"
            )
        if self.readmit_after < 1:
            raise ConfigError(
                f"readmit_after must be >= 1, got {self.readmit_after}"
            )
        if self.max_failovers < 0:
            raise ConfigError(
                f"max_failovers must be >= 0, got {self.max_failovers}"
            )


@dataclass(frozen=True)
class ReplicaAction:
    """One recorded replica-level recovery decision."""

    kind: str  #: ``mark-unhealthy`` / ``drain`` / ``failover`` / ``shed`` / ``readmit``
    time_us: float
    node: int
    detail: str

    def describe(self) -> str:
        """One-line rendering for the report."""
        return f"t={self.time_us:.0f}us node{self.node} {self.kind}: {self.detail}"


@dataclass
class ClusterResilienceReport:
    """What the replica-level recovery layer did during one cluster run."""

    actions: List[ReplicaAction] = field(default_factory=list)
    unhealthy_marks: int = 0
    readmissions: int = 0
    #: Batches re-dispatched to another replica after a failure.
    failovers: int = 0
    #: Requests shed because their failover budget ran out or no healthy
    #: replica was available.
    failover_shed_requests: int = 0
    #: Batches left to drain in place on an unreachable replica.
    drains: int = 0

    def record(self, kind: str, time_us: float, node: int, detail: str) -> None:
        """Append one action and bump its aggregate counter."""
        self.actions.append(ReplicaAction(kind, time_us, node, detail))
        if kind == "mark-unhealthy":
            self.unhealthy_marks += 1
        elif kind == "readmit":
            self.readmissions += 1
        elif kind == "failover":
            self.failovers += 1
        elif kind == "drain":
            self.drains += 1

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = ["cluster resilience report:"]
        lines.append(
            f"  replicas: {self.unhealthy_marks} unhealthy mark(s), "
            f"{self.readmissions} readmission(s)"
        )
        lines.append(
            f"  failover: {self.failovers} batch(es) re-dispatched, "
            f"{self.drains} left to drain, "
            f"{self.failover_shed_requests} request(s) shed"
        )
        for action in self.actions:
            lines.append(f"    {action.describe()}")
        return "\n".join(lines)


class ReplicaRecovery:
    """Per-replica health state machine plus the failover budget.

    The cluster :class:`~repro.cluster.router.Router` consults this object
    on every heartbeat sweep and dispatch decision; it owns no engine state
    itself (pure bookkeeping), which keeps the policy unit-testable without
    a simulation.  The four replica-level actions the issue tracker of this
    layer names — *mark-unhealthy*, *drain*, *re-dispatch with retry
    budget*, *re-admit on recovery* — all flow through here and land in the
    :class:`ClusterResilienceReport`.
    """

    def __init__(
        self,
        num_nodes: int,
        config: Optional[ReplicaRecoveryConfig] = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigError(f"need at least one replica, got {num_nodes}")
        self.config = config or ReplicaRecoveryConfig()
        self.num_nodes = num_nodes
        self.report = ClusterResilienceReport()
        self._healthy = [True] * num_nodes
        self._consecutive_failures = [0] * num_nodes
        self._consecutive_successes = [0] * num_nodes
        self._failover_attempts: dict = {}

    # ------------------------------------------------------------------
    def healthy(self, node: int) -> bool:
        """Whether the router currently considers ``node`` dispatchable."""
        return self._healthy[node]

    @property
    def healthy_count(self) -> int:
        """Number of replicas currently marked healthy."""
        return sum(self._healthy)

    def note_probe(self, node: int, ok: bool, now: float, reason: str) -> Optional[str]:
        """Fold one health-probe result into the state machine.

        Returns ``"mark-unhealthy"`` or ``"readmit"`` when this probe flips
        the replica's state, else ``None``.  ``reason`` names the probe
        outcome (``"crashed"``, ``"partitioned"``, ``"probe ok"``).
        """
        if ok:
            self._consecutive_failures[node] = 0
            self._consecutive_successes[node] += 1
            if (
                not self._healthy[node]
                and self._consecutive_successes[node] >= self.config.readmit_after
            ):
                self._healthy[node] = True
                self.report.record(
                    "readmit",
                    now,
                    node,
                    f"{self._consecutive_successes[node]} consecutive probe(s) ok",
                )
                return "readmit"
            return None
        self._consecutive_successes[node] = 0
        self._consecutive_failures[node] += 1
        if (
            self._healthy[node]
            and self._consecutive_failures[node] >= self.config.unhealthy_after
        ):
            self._healthy[node] = False
            self.report.record(
                "mark-unhealthy",
                now,
                node,
                f"{reason} ({self._consecutive_failures[node]} failed probe(s))",
            )
            return "mark-unhealthy"
        return None

    # ------------------------------------------------------------------
    def allow_failover(self, batch_id: int) -> bool:
        """Charge one re-dispatch against ``batch_id``'s budget.

        Returns ``False`` once the batch has been failed over
        ``max_failovers`` times — the caller must shed it.
        """
        used = self._failover_attempts.get(batch_id, 0)
        if used >= self.config.max_failovers:
            return False
        self._failover_attempts[batch_id] = used + 1
        return True

    def failover_attempts(self, batch_id: int) -> int:
        """How many re-dispatches ``batch_id`` has consumed."""
        return self._failover_attempts.get(batch_id, 0)

    def note_drain(self, node: int, now: float, batch_ids: List[int]) -> None:
        """Record in-flight work left to drain on an unreachable replica."""
        self.report.record(
            "drain",
            now,
            node,
            f"{len(batch_ids)} in-flight batch(es) draining in place: {batch_ids}",
        )

    def note_failover(
        self, node: int, now: float, batch_id: int, target: int
    ) -> None:
        """Record one successful re-dispatch decision."""
        self.report.record(
            "failover",
            now,
            node,
            f"batch {batch_id} re-dispatched to node{target} "
            f"(attempt {self.failover_attempts(batch_id)})",
        )

    def note_shed(self, node: int, now: float, batch_id: int, why: str, requests: int) -> None:
        """Record a failover-path shed (budget exhausted / no target)."""
        self.report.failover_shed_requests += requests
        self.report.record("shed", now, node, f"batch {batch_id}: {why}")
