"""Declarative fault plans: *what* goes wrong, *where*, and *when*.

Liger's interleaving is only as good as its assumptions: Principle 1 (§3.5)
holds when the offline-profiled contention factors match reality, and the
hybrid synchronization schedule assumes launch overheads near the profiled
~5 µs.  A production node violates those assumptions routinely — a thermally
throttled GPU, a degraded NVLink/PCIe link, a driver hiccup failing a launch,
a jittery host.  A :class:`FaultPlan` describes such conditions as windows in
*simulated* time so the recovery layer (watchdog, retry/backoff, strategy
degradation) can be exercised deterministically:

* :class:`GpuStraggler` — SM-clock throttling on one device: compute-like
  kernels on that GPU run ``factor``× slower.  Bandwidth-bound collectives
  are left untouched (NVLink/PCIe rates do not track the SM clock), which is
  precisely what breaks Principle 1: a compute secondary subset outlives its
  communication window.
* :class:`LinkDegradation` — the interconnect delivers only ``fraction`` of
  its nominal bandwidth; collectives issued during the window are costed at
  the reduced rate (hooked into
  :class:`~repro.sim.interconnect.CollectiveCostModel`).
* :class:`LaunchFailure` — transient kernel-launch failures: every batch
  submission attempted inside the window fails with
  :class:`~repro.errors.FaultError` and must be retried with backoff.
* :class:`HostJitter` — the host launch path becomes noisy: each submitted
  command's device visibility is delayed by a deterministic jitter of up to
  ``amplitude`` µs.

The cluster layer (:mod:`repro.cluster`) adds three *node-level* faults that
ride the same plan machinery but are interpreted by the cluster's fault
driver rather than a per-machine injector:

* :class:`NodeCrash` — a whole replica dies (its machine halts, in-flight
  work is lost) and, if the window is finite, restarts fresh at the end.
* :class:`NetworkPartition` — a set of replicas becomes unreachable from
  the router: health probes fail and no new work is dispatched, but work
  already on the replica keeps executing and its completions still count.
* :class:`NodeDegradation` — a whole-node straggler: every GPU of one
  replica is throttled by ``factor`` (translated into per-GPU
  :class:`GpuStraggler` windows on that replica's machine).

Every fault is a half-open window ``[start, end)`` in µs; plans carry no
randomness of their own, so a given plan replays identically — the property
all fault tests rely on.

Validation: besides per-fault parameter checks, :class:`FaultPlan` rejects
two windows that overlap *on the same target* (same GPU, same node, the
one shared link, ...).  Overlapping same-target windows used to compose
silently (factors multiplied mid-window), which made injector behaviour
confusing to reason about and impossible to name in a report; now they are
a :class:`~repro.errors.ConfigError` naming both offending windows.
Windows on *different* targets may overlap freely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "Fault",
    "GpuStraggler",
    "LinkDegradation",
    "LaunchFailure",
    "HostJitter",
    "NodeCrash",
    "NetworkPartition",
    "NodeDegradation",
    "FaultPlan",
    "plan_from_specs",
]

#: Deterministic jitter profile: fractions of the amplitude applied to
#: successive submissions (a fixed sawtooth — reproducible, mean ≈ 0.5).
_JITTER_PATTERN: Tuple[float, ...] = (0.25, 0.9, 0.5, 1.0, 0.1, 0.7, 0.35, 0.8)


@dataclass(frozen=True)
class Fault:
    """Base fault: an activity window ``[start, end)`` in simulated µs."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.start) or self.start < 0:
            raise ConfigError(f"fault start must be finite and >= 0, got {self.start}")
        if math.isnan(self.end) or self.end <= self.start:
            raise ConfigError(
                f"fault window [{self.start}, {self.end}) is empty or invalid"
            )

    def active(self, now: float) -> bool:
        """True while the fault window covers ``now``."""
        return self.start <= now < self.end

    def targets(self) -> Tuple[Hashable, ...]:
        """The resources this fault occupies, for overlap validation.

        Two faults sharing any target key may not have overlapping windows.
        The base class claims a per-type singleton target (two windows of
        the same fault kind must be disjoint unless a subclass narrows the
        target to something finer, e.g. one GPU).
        """
        return (type(self).__name__,)

    def describe(self) -> str:
        """One-line human description (used by the ResilienceReport)."""
        return f"{type(self).__name__}[{self.start:.0f}..{self.end:.0f}us]"


@dataclass(frozen=True)
class GpuStraggler(Fault):
    """One device's compute-like kernels run ``factor``× slower.

    Models SM-clock throttling (thermal/power capping): arithmetic kernels
    stretch with the clock while bandwidth-bound collectives barely move —
    the asymmetry that silently breaks Liger's Principle 1.
    """

    gpu: int = 0
    factor: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gpu < 0:
            raise ConfigError(f"straggler gpu must be >= 0, got {self.gpu}")
        if self.factor < 1.0:
            raise ConfigError(
                f"straggler factor must be >= 1 (a slowdown), got {self.factor}"
            )

    def targets(self) -> Tuple[Hashable, ...]:
        """One straggler window per GPU at a time."""
        return (("straggler", self.gpu),)

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"straggler(gpu={self.gpu}, x{self.factor:g})"
            f"[{self.start:.0f}..{self.end:.0f}us]"
        )


@dataclass(frozen=True)
class LinkDegradation(Fault):
    """The interconnect delivers only ``fraction`` of nominal bandwidth.

    Applied at collective-costing time: all-reduce and p2p operations issued
    while the window is active are costed with the degraded bandwidth (see
    ``CollectiveCostModel.bandwidth_scale``).
    """

    fraction: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigError(
                f"link fraction must be in (0, 1], got {self.fraction}"
            )

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"link(x{self.fraction:g} bw)[{self.start:.0f}..{self.end:.0f}us]"
        )


@dataclass(frozen=True)
class LaunchFailure(Fault):
    """Transient kernel-launch failures over the window.

    Every batch submission attempted while active raises
    :class:`~repro.errors.FaultError`; the retry layer backs off until the
    window passes (or the retry budget runs out).
    """

    def describe(self) -> str:
        """One-line human description."""
        return f"launch-fail[{self.start:.0f}..{self.end:.0f}us]"


@dataclass(frozen=True)
class HostJitter(Fault):
    """Noisy host launch path: per-command visibility delayed by ≤ amplitude µs.

    The delay follows a fixed sawtooth over successive submissions, so runs
    replay deterministically.
    """

    amplitude: float = 5.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.amplitude < 0:
            raise ConfigError(f"jitter amplitude must be >= 0, got {self.amplitude}")

    def jitter(self, sequence: int) -> float:
        """The delay (µs) applied to the ``sequence``-th jittered submission."""
        return self.amplitude * _JITTER_PATTERN[sequence % len(_JITTER_PATTERN)]

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"jitter(±{self.amplitude:g}us)[{self.start:.0f}..{self.end:.0f}us]"
        )


# ----------------------------------------------------------------------
# Node-level faults (interpreted by repro.cluster, not the per-machine
# injector — a plan carrying these must be handed to a Cluster).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodeCrash(Fault):
    """A whole replica dies for the window.

    At ``start`` the replica's machine halts: every queued command, ready
    kernel, and in-flight collective vanishes — the simulated analogue of
    the serving process being SIGKILLed.  Work that was dispatched there is
    *lost* and must be failed over (re-dispatched elsewhere) or shed.  A
    finite ``end`` models a restart: the node comes back with a fresh
    machine and strategy (empty caches, no KV state) and is re-admitted by
    the router once health probes succeed again.
    """

    node: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ConfigError(f"crash node must be >= 0, got {self.node}")

    def targets(self) -> Tuple[Hashable, ...]:
        """One crash window per node at a time."""
        return (("crash", self.node),)

    def describe(self) -> str:
        """One-line human description."""
        return f"crash(node={self.node})[{self.start:.0f}..{self.end:.0f}us]"


@dataclass(frozen=True)
class NetworkPartition(Fault):
    """A set of replicas becomes unreachable from the router.

    Unlike a crash, the partitioned nodes keep executing: work already
    dispatched drains normally and its completions still count (the
    response path is modelled as eventually-delivered).  What the partition
    severs is the *control* plane — health probes fail, so the router marks
    the nodes unhealthy and stops dispatching new work until the window
    closes and probes succeed again.
    """

    nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        # Normalise any iterable to a tuple so the dataclass stays hashable.
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ConfigError("a partition must name at least one node")
        if any(n < 0 for n in self.nodes):
            raise ConfigError(f"partition nodes must be >= 0, got {self.nodes}")
        if len(set(self.nodes)) != len(self.nodes):
            raise ConfigError(f"partition names a node twice: {self.nodes}")

    def covers(self, node: int) -> bool:
        """True when ``node`` is inside the partitioned set."""
        return node in self.nodes

    def targets(self) -> Tuple[Hashable, ...]:
        """A partition occupies every node it cuts off."""
        return tuple(("partition", n) for n in self.nodes)

    def describe(self) -> str:
        """One-line human description."""
        members = ",".join(str(n) for n in self.nodes)
        return f"partition(nodes={members})[{self.start:.0f}..{self.end:.0f}us]"


@dataclass(frozen=True)
class NodeDegradation(Fault):
    """A whole-node straggler: every GPU of one replica runs ``factor``× slow.

    Models node-wide thermal capping or a shared power budget.  The cluster
    translates this into one :class:`GpuStraggler` per GPU on the replica's
    machine, so the per-kernel semantics (compute inflated, bandwidth-bound
    collectives untouched) are exactly the single-node straggler's.
    """

    node: int = 0
    factor: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ConfigError(f"degraded node must be >= 0, got {self.node}")
        if self.factor < 1.0:
            raise ConfigError(
                f"degradation factor must be >= 1 (a slowdown), got {self.factor}"
            )

    def targets(self) -> Tuple[Hashable, ...]:
        """One degradation window per node at a time."""
        return (("degrade", self.node),)

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"degrade(node={self.node}, x{self.factor:g})"
            f"[{self.start:.0f}..{self.end:.0f}us]"
        )


class FaultPlan:
    """An immutable set of faults plus the time-indexed queries hooks need.

    The plan is pure data — it never touches the engine.  The
    :class:`~repro.faults.injector.FaultInjector` binds it to a machine and
    evaluates these queries at hook sites.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults: List[Fault] = list(faults)
        for f in self.faults:
            if not isinstance(f, Fault):
                raise ConfigError(f"not a Fault: {f!r}")
        self._check_overlaps()
        self._stragglers = [f for f in self.faults if isinstance(f, GpuStraggler)]
        self._links = [f for f in self.faults if isinstance(f, LinkDegradation)]
        self._launch = [f for f in self.faults if isinstance(f, LaunchFailure)]
        self._jitters = [f for f in self.faults if isinstance(f, HostJitter)]
        self._crashes = [f for f in self.faults if isinstance(f, NodeCrash)]
        self._partitions = [
            f for f in self.faults if isinstance(f, NetworkPartition)
        ]
        self._degradations = [
            f for f in self.faults if isinstance(f, NodeDegradation)
        ]

    def _check_overlaps(self) -> None:
        """Reject two windows that overlap on the same target.

        Windows are half-open, so ``[0, 100)`` and ``[100, 200)`` on the
        same target are fine; ``[0, 100)`` and ``[50, 150)`` are not.  The
        error names both offending windows — the whole point over the old
        silent multiplicative composition.
        """
        by_target: Dict[Hashable, List[Fault]] = {}
        for f in self.faults:
            for key in f.targets():
                by_target.setdefault(key, []).append(f)
        for group in by_target.values():
            if len(group) < 2:
                continue
            ordered = sorted(group, key=lambda f: (f.start, f.end))
            for prev, cur in zip(ordered, ordered[1:]):
                if cur.start < prev.end:
                    raise ConfigError(
                        "fault windows overlap on the same target: "
                        f"{prev.describe()} and {cur.describe()}"
                    )

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """True when the plan injects nothing."""
        return not self.faults

    @property
    def stragglers(self) -> List["GpuStraggler"]:
        """The plan's GPU-straggler faults (for target validation at arm)."""
        return list(self._stragglers)

    @property
    def crashes(self) -> List["NodeCrash"]:
        """The plan's node-crash faults (cluster-level)."""
        return list(self._crashes)

    @property
    def partitions(self) -> List["NetworkPartition"]:
        """The plan's network-partition faults (cluster-level)."""
        return list(self._partitions)

    @property
    def degradations(self) -> List["NodeDegradation"]:
        """The plan's whole-node degradation faults (cluster-level)."""
        return list(self._degradations)

    @property
    def node_faults(self) -> List[Fault]:
        """Faults only a :class:`repro.cluster.Cluster` can interpret."""
        return [*self._crashes, *self._partitions, *self._degradations]

    def node_crashed(self, node: int, now: float) -> bool:
        """True while a crash window covers ``node`` at ``now``."""
        return any(f.node == node and f.active(now) for f in self._crashes)

    def node_partitioned(self, node: int, now: float) -> bool:
        """True while a partition window cuts ``node`` off at ``now``."""
        return any(
            f.covers(node) and f.active(now) for f in self._partitions
        )

    def boundaries(self) -> List[float]:
        """Sorted unique window edges — the instants rates must be refreshed."""
        edges = set()
        for f in self.faults:
            edges.add(f.start)
            if math.isfinite(f.end):
                edges.add(f.end)
        return sorted(edges)

    def active(self, now: float) -> List[Fault]:
        """All faults whose window covers ``now``."""
        return [f for f in self.faults if f.active(now)]

    def last_end(self) -> float:
        """Latest finite window edge (0.0 for an empty plan)."""
        ends = [f.end for f in self.faults if math.isfinite(f.end)]
        return max(ends) if ends else 0.0

    # ------------------------------------------------------------------
    # Hook-site queries (all O(#faults of that kind); plans are tiny)
    # ------------------------------------------------------------------
    def compute_inflation(self, gpu: int, now: float) -> float:
        """Combined straggler factor for compute-like kernels on ``gpu``."""
        factor = 1.0
        for f in self._stragglers:
            if f.gpu == gpu and f.active(now):
                factor *= f.factor
        return factor

    def bandwidth_fraction(self, now: float) -> float:
        """Fraction of nominal interconnect bandwidth available at ``now``."""
        fraction = 1.0
        for f in self._links:
            if f.active(now):
                fraction *= f.fraction
        return max(fraction, 1e-6)

    def launch_failing(self, now: float) -> bool:
        """True when a transient launch-failure window is active."""
        return any(f.active(now) for f in self._launch)

    def host_jitter(self, now: float, sequence: int) -> float:
        """Total jitter delay (µs) for the ``sequence``-th submission."""
        return sum(f.jitter(sequence) for f in self._jitters if f.active(now))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({', '.join(f.describe() for f in self.faults) or 'empty'})"


def plan_from_specs(
    stragglers: Sequence[Tuple[int, float, float, float]] = (),
    links: Sequence[Tuple[float, float, float]] = (),
    launch_windows: Sequence[Tuple[float, float]] = (),
    jitters: Sequence[Tuple[float, float, float]] = (),
) -> FaultPlan:
    """Build a plan from plain tuples (the CLI's parsing target).

    ``stragglers``: (gpu, factor, start, end); ``links``: (fraction, start,
    end); ``launch_windows``: (start, end); ``jitters``: (amplitude, start,
    end).
    """
    faults: List[Fault] = []
    faults += [
        GpuStraggler(start=s, end=e, gpu=g, factor=f) for g, f, s, e in stragglers
    ]
    faults += [LinkDegradation(start=s, end=e, fraction=f) for f, s, e in links]
    faults += [LaunchFailure(start=s, end=e) for s, e in launch_windows]
    faults += [HostJitter(start=s, end=e, amplitude=a) for a, s, e in jitters]
    return FaultPlan(faults)
