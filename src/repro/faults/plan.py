"""Declarative fault plans: *what* goes wrong, *where*, and *when*.

Liger's interleaving is only as good as its assumptions: Principle 1 (§3.5)
holds when the offline-profiled contention factors match reality, and the
hybrid synchronization schedule assumes launch overheads near the profiled
~5 µs.  A production node violates those assumptions routinely — a thermally
throttled GPU, a degraded NVLink/PCIe link, a driver hiccup failing a launch,
a jittery host.  A :class:`FaultPlan` describes such conditions as windows in
*simulated* time so the recovery layer (watchdog, retry/backoff, strategy
degradation) can be exercised deterministically:

* :class:`GpuStraggler` — SM-clock throttling on one device: compute-like
  kernels on that GPU run ``factor``× slower.  Bandwidth-bound collectives
  are left untouched (NVLink/PCIe rates do not track the SM clock), which is
  precisely what breaks Principle 1: a compute secondary subset outlives its
  communication window.
* :class:`LinkDegradation` — the interconnect delivers only ``fraction`` of
  its nominal bandwidth; collectives issued during the window are costed at
  the reduced rate (hooked into
  :class:`~repro.sim.interconnect.CollectiveCostModel`).
* :class:`LaunchFailure` — transient kernel-launch failures: every batch
  submission attempted inside the window fails with
  :class:`~repro.errors.FaultError` and must be retried with backoff.
* :class:`HostJitter` — the host launch path becomes noisy: each submitted
  command's device visibility is delayed by a deterministic jitter of up to
  ``amplitude`` µs.

Every fault is a half-open window ``[start, end)`` in µs; plans carry no
randomness of their own, so a given plan replays identically — the property
all fault tests rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "Fault",
    "GpuStraggler",
    "LinkDegradation",
    "LaunchFailure",
    "HostJitter",
    "FaultPlan",
    "plan_from_specs",
]

#: Deterministic jitter profile: fractions of the amplitude applied to
#: successive submissions (a fixed sawtooth — reproducible, mean ≈ 0.5).
_JITTER_PATTERN: Tuple[float, ...] = (0.25, 0.9, 0.5, 1.0, 0.1, 0.7, 0.35, 0.8)


@dataclass(frozen=True)
class Fault:
    """Base fault: an activity window ``[start, end)`` in simulated µs."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.start) or self.start < 0:
            raise ConfigError(f"fault start must be finite and >= 0, got {self.start}")
        if math.isnan(self.end) or self.end <= self.start:
            raise ConfigError(
                f"fault window [{self.start}, {self.end}) is empty or invalid"
            )

    def active(self, now: float) -> bool:
        """True while the fault window covers ``now``."""
        return self.start <= now < self.end

    def describe(self) -> str:
        """One-line human description (used by the ResilienceReport)."""
        return f"{type(self).__name__}[{self.start:.0f}..{self.end:.0f}us]"


@dataclass(frozen=True)
class GpuStraggler(Fault):
    """One device's compute-like kernels run ``factor``× slower.

    Models SM-clock throttling (thermal/power capping): arithmetic kernels
    stretch with the clock while bandwidth-bound collectives barely move —
    the asymmetry that silently breaks Liger's Principle 1.
    """

    gpu: int = 0
    factor: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gpu < 0:
            raise ConfigError(f"straggler gpu must be >= 0, got {self.gpu}")
        if self.factor < 1.0:
            raise ConfigError(
                f"straggler factor must be >= 1 (a slowdown), got {self.factor}"
            )

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"straggler(gpu={self.gpu}, x{self.factor:g})"
            f"[{self.start:.0f}..{self.end:.0f}us]"
        )


@dataclass(frozen=True)
class LinkDegradation(Fault):
    """The interconnect delivers only ``fraction`` of nominal bandwidth.

    Applied at collective-costing time: all-reduce and p2p operations issued
    while the window is active are costed with the degraded bandwidth (see
    ``CollectiveCostModel.bandwidth_scale``).
    """

    fraction: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigError(
                f"link fraction must be in (0, 1], got {self.fraction}"
            )

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"link(x{self.fraction:g} bw)[{self.start:.0f}..{self.end:.0f}us]"
        )


@dataclass(frozen=True)
class LaunchFailure(Fault):
    """Transient kernel-launch failures over the window.

    Every batch submission attempted while active raises
    :class:`~repro.errors.FaultError`; the retry layer backs off until the
    window passes (or the retry budget runs out).
    """

    def describe(self) -> str:
        """One-line human description."""
        return f"launch-fail[{self.start:.0f}..{self.end:.0f}us]"


@dataclass(frozen=True)
class HostJitter(Fault):
    """Noisy host launch path: per-command visibility delayed by ≤ amplitude µs.

    The delay follows a fixed sawtooth over successive submissions, so runs
    replay deterministically.
    """

    amplitude: float = 5.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.amplitude < 0:
            raise ConfigError(f"jitter amplitude must be >= 0, got {self.amplitude}")

    def jitter(self, sequence: int) -> float:
        """The delay (µs) applied to the ``sequence``-th jittered submission."""
        return self.amplitude * _JITTER_PATTERN[sequence % len(_JITTER_PATTERN)]

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"jitter(±{self.amplitude:g}us)[{self.start:.0f}..{self.end:.0f}us]"
        )


class FaultPlan:
    """An immutable set of faults plus the time-indexed queries hooks need.

    The plan is pure data — it never touches the engine.  The
    :class:`~repro.faults.injector.FaultInjector` binds it to a machine and
    evaluates these queries at hook sites.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults: List[Fault] = list(faults)
        for f in self.faults:
            if not isinstance(f, Fault):
                raise ConfigError(f"not a Fault: {f!r}")
        self._stragglers = [f for f in self.faults if isinstance(f, GpuStraggler)]
        self._links = [f for f in self.faults if isinstance(f, LinkDegradation)]
        self._launch = [f for f in self.faults if isinstance(f, LaunchFailure)]
        self._jitters = [f for f in self.faults if isinstance(f, HostJitter)]

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """True when the plan injects nothing."""
        return not self.faults

    @property
    def stragglers(self) -> List["GpuStraggler"]:
        """The plan's GPU-straggler faults (for target validation at arm)."""
        return list(self._stragglers)

    def boundaries(self) -> List[float]:
        """Sorted unique window edges — the instants rates must be refreshed."""
        edges = set()
        for f in self.faults:
            edges.add(f.start)
            if math.isfinite(f.end):
                edges.add(f.end)
        return sorted(edges)

    def active(self, now: float) -> List[Fault]:
        """All faults whose window covers ``now``."""
        return [f for f in self.faults if f.active(now)]

    def last_end(self) -> float:
        """Latest finite window edge (0.0 for an empty plan)."""
        ends = [f.end for f in self.faults if math.isfinite(f.end)]
        return max(ends) if ends else 0.0

    # ------------------------------------------------------------------
    # Hook-site queries (all O(#faults of that kind); plans are tiny)
    # ------------------------------------------------------------------
    def compute_inflation(self, gpu: int, now: float) -> float:
        """Combined straggler factor for compute-like kernels on ``gpu``."""
        factor = 1.0
        for f in self._stragglers:
            if f.gpu == gpu and f.active(now):
                factor *= f.factor
        return factor

    def bandwidth_fraction(self, now: float) -> float:
        """Fraction of nominal interconnect bandwidth available at ``now``."""
        fraction = 1.0
        for f in self._links:
            if f.active(now):
                fraction *= f.fraction
        return max(fraction, 1e-6)

    def launch_failing(self, now: float) -> bool:
        """True when a transient launch-failure window is active."""
        return any(f.active(now) for f in self._launch)

    def host_jitter(self, now: float, sequence: int) -> float:
        """Total jitter delay (µs) for the ``sequence``-th submission."""
        return sum(f.jitter(sequence) for f in self._jitters if f.active(now))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({', '.join(f.describe() for f in self.faults) or 'empty'})"


def plan_from_specs(
    stragglers: Sequence[Tuple[int, float, float, float]] = (),
    links: Sequence[Tuple[float, float, float]] = (),
    launch_windows: Sequence[Tuple[float, float]] = (),
    jitters: Sequence[Tuple[float, float, float]] = (),
) -> FaultPlan:
    """Build a plan from plain tuples (the CLI's parsing target).

    ``stragglers``: (gpu, factor, start, end); ``links``: (fraction, start,
    end); ``launch_windows``: (start, end); ``jitters``: (amplitude, start,
    end).
    """
    faults: List[Fault] = []
    faults += [
        GpuStraggler(start=s, end=e, gpu=g, factor=f) for g, f, s, e in stragglers
    ]
    faults += [LinkDegradation(start=s, end=e, fraction=f) for f, s, e in links]
    faults += [LaunchFailure(start=s, end=e) for s, e in launch_windows]
    faults += [HostJitter(start=s, end=e, amplitude=a) for a, s, e in jitters]
    return FaultPlan(faults)
