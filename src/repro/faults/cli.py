"""The ``faults`` CLI: serve a workload under injected faults.

Usage::

    python -m repro faults --model OPT-13B --node v100 --gpus 4 \\
        --rate 40 --requests 32 --straggler 1:4.0:0:400
    python -m repro faults --launch-fail 50:53 --link 0.3:0:300
    python -m repro faults --straggler 1:3.0:0:400 --no-fallback

Fault windows are given in **milliseconds** of simulated time (the serving
run spans seconds); everything is converted to the simulator's microseconds
internally.  Repeat a flag to inject several faults of the same kind.  The
run prints the usual serving summary followed by the
:class:`~repro.faults.resilience.ResilienceReport`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence, Tuple

from repro.cli import resolve_model_node, workload_parent
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, plan_from_specs
from repro.faults.resilience import ResilienceConfig
from repro.serving.api import serve

__all__ = ["build_plan", "main"]

_MS = 1e3  # CLI windows are in ms; the simulator runs in µs.


def _split(spec: str, n: int, flag: str) -> List[float]:
    parts = spec.split(":")
    if len(parts) != n:
        raise ConfigError(
            f"{flag} expects {n} colon-separated fields, got {spec!r}"
        )
    try:
        return [float(p) for p in parts]
    except ValueError as exc:
        raise ConfigError(f"{flag}: non-numeric field in {spec!r}") from exc


def build_plan(
    stragglers: Sequence[str],
    links: Sequence[str],
    launch_fails: Sequence[str],
    jitters: Sequence[str],
) -> FaultPlan:
    """Parse the CLI fault specs (windows in ms) into a :class:`FaultPlan`.

    Spec formats — ``--straggler GPU:FACTOR:START:END``,
    ``--link FRACTION:START:END``, ``--launch-fail START:END``,
    ``--jitter AMPLITUDE_US:START:END``.
    """
    s_specs: List[Tuple[int, float, float, float]] = []
    for spec in stragglers:
        gpu, factor, start, end = _split(spec, 4, "--straggler")
        s_specs.append((int(gpu), factor, start * _MS, end * _MS))
    l_specs = []
    for spec in links:
        fraction, start, end = _split(spec, 3, "--link")
        l_specs.append((fraction, start * _MS, end * _MS))
    f_specs = []
    for spec in launch_fails:
        start, end = _split(spec, 2, "--launch-fail")
        f_specs.append((start * _MS, end * _MS))
    j_specs = []
    for spec in jitters:
        amplitude, start, end = _split(spec, 3, "--jitter")
        j_specs.append((amplitude, start * _MS, end * _MS))
    return plan_from_specs(
        stragglers=s_specs,
        links=l_specs,
        launch_windows=f_specs,
        jitters=j_specs,
    )


def main(argv=None) -> int:
    """Entry point for ``python -m repro faults``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Serve a workload under injected faults and report "
        "the recovery layer's behaviour.",
        parents=[
            workload_parent(
                model_default="OPT-13B", rate_default=40.0,
                requests_default=32, seed_default=1,
            )
        ],
    )
    parser.add_argument("--straggler", action="append", default=[],
                        metavar="GPU:FACTOR:START:END",
                        help="slow one GPU's compute kernels (window in ms)")
    parser.add_argument("--link", action="append", default=[],
                        metavar="FRACTION:START:END",
                        help="degrade interconnect bandwidth (window in ms)")
    parser.add_argument("--launch-fail", action="append", default=[],
                        metavar="START:END",
                        help="transient launch failures (window in ms)")
    parser.add_argument("--jitter", action="append", default=[],
                        metavar="AMPLITUDE_US:START:END",
                        help="host launch jitter (amplitude in µs, window in ms)")
    parser.add_argument("--violation-threshold", type=int, default=3,
                        help="Principle-1 violations tolerated before downgrade")
    parser.add_argument("--probe-ms", type=float, default=20.0,
                        help="recovery probe period while degraded (ms)")
    parser.add_argument("--max-retries", type=int, default=5)
    parser.add_argument("--no-fallback", action="store_true",
                        help="never downgrade the strategy")
    parser.add_argument("--no-watchdog", action="store_true",
                        help="disable the livelock watchdog")
    args = parser.parse_args(argv)

    try:
        plan = build_plan(
            args.straggler, args.link, args.launch_fail, args.jitter
        )
    except ConfigError as exc:
        parser.error(str(exc))
    config = ResilienceConfig(
        violation_threshold=args.violation_threshold,
        recovery_probe_us=args.probe_ms * _MS,
        max_retries=args.max_retries,
        enable_fallback=not args.no_fallback,
        enable_watchdog=not args.no_watchdog,
    )
    model, node = resolve_model_node(args)
    result = serve(
        model,
        node,
        strategy=args.strategy,
        workload=args.workload,
        policy=args.policy,
        arrival_rate=args.rate,
        num_requests=args.requests,
        batch_size=args.batch,
        seed=args.seed,
        fault_plan=plan,
        resilience=config,
    )
    print(result.summary())
    stats = result.latency_stats()
    print(
        f"latency ms: mean={stats.mean:.1f} p50={stats.p50:.1f} "
        f"p95={stats.p95:.1f} p99={stats.p99:.1f} max={stats.max:.1f}"
    )
    print()
    print(result.resilience.describe())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
