"""Runtime Principle-1 monitoring: catch the violation the plan can't see.

Liger's scheduler *validates* Principle 1 at planning time
(:meth:`~repro.core.scheduler.Round.validate_principle1`): the secondary
subset's anticipated duration must fit the primary window.  That validation
trusts the profiled contention factors — under an active fault (a straggling
GPU, a degraded link) anticipation is systematically wrong, the plan passes,
and the *execution* violates: the secondary subset outlives the primary and
delays the next round's primary kernels, exactly the condition
:class:`~repro.errors.SchedulingError` names (§3.5).

This monitor observes executions rather than plans.  The Liger runtime tags
each launched kernel with its round index and subset
(``LigerRuntime.on_round_launched``); a completion observer folds kernel end
times per round, and when a round's kernels have all retired it compares the
subsets: a secondary end beyond the primary end by more than
``margin_frac × window`` is one violation.  The recovery layer counts them
and downgrades the strategy when they persist.

Purely passive: the monitor registers observers and reads timestamps; it
never schedules events, so an attached monitor does not change the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.sim.gpu import Machine
from repro.sim.kernel import Kernel

__all__ = ["PrincipleMonitor", "RoundObservation"]


@dataclass
class RoundObservation:
    """Accumulated completion state of one launched round."""

    expected0: int
    expected1: int
    window: float
    seen0: int = 0
    seen1: int = 0
    end0: float = field(default=-1.0)
    end1: float = field(default=-1.0)

    @property
    def complete(self) -> bool:
        """True once every kernel of both subsets has retired."""
        return self.seen0 >= self.expected0 and self.seen1 >= self.expected1


class PrincipleMonitor:
    """Counts executed rounds whose secondary subset outlived the primary.

    Parameters
    ----------
    machine:
        Machine whose kernel completions are observed.
    margin_frac:
        Tolerated secondary overshoot as a fraction of the round window
        (anticipation margins make small overshoots benign).
    min_margin:
        Absolute overshoot floor (µs) below which no violation is counted,
        whatever the window size.
    on_violation:
        Optional callback ``fn(round_index, overshoot_us, time_us)`` fired
        per detected violation.
    """

    def __init__(
        self,
        machine: Machine,
        *,
        margin_frac: float = 0.10,
        min_margin: float = 10.0,
        on_violation: Optional[Callable[[int, float, float], None]] = None,
    ) -> None:
        self.machine = machine
        self.margin_frac = margin_frac
        self.min_margin = min_margin
        self.on_violation = on_violation
        self.rounds_observed = 0
        self.violations = 0
        self._rounds: Dict[int, RoundObservation] = {}
        machine.on_kernel_complete(self._on_kernel_complete)

    # ------------------------------------------------------------------
    def attach(self, runtime) -> None:
        """Hook a :class:`~repro.core.runtime.LigerRuntime`'s round launches."""
        runtime.on_round_launched = self._on_round_launched

    def _on_round_launched(
        self, index: int, expected0: int, expected1: int, window: float
    ) -> None:
        self._rounds[index] = RoundObservation(
            expected0=expected0, expected1=expected1, window=window
        )

    # ------------------------------------------------------------------
    def _on_kernel_complete(self, kernel: Kernel, time: float) -> None:
        rindex = kernel.meta.get("_round")
        if rindex is None:
            return
        obs = self._rounds.get(rindex)
        if obs is None:
            return
        if kernel.meta.get("_subset") == 0:
            obs.seen0 += 1
            obs.end0 = max(obs.end0, time)
        else:
            obs.seen1 += 1
            obs.end1 = max(obs.end1, time)
        if obs.complete:
            del self._rounds[rindex]
            self._judge(rindex, obs)

    def _judge(self, rindex: int, obs: RoundObservation) -> None:
        self.rounds_observed += 1
        if obs.expected1 == 0:
            return  # nothing was interleaved: Principle 1 is vacuous
        margin = max(self.min_margin, self.margin_frac * obs.window)
        overshoot = obs.end1 - obs.end0
        if overshoot > margin:
            self.violations += 1
            if self.on_violation is not None:
                self.on_violation(rindex, overshoot, max(obs.end0, obs.end1))
