"""Theoretical inter-operator parallelism (Inter-Th, §4.1).

Identical pipeline structure to :class:`~repro.parallel.inter_op.InterOpStrategy`,
but each stage executes the **partitioned kernels taken from the intra-op
approach** instead of whole single-device kernels: a stage prices each GEMM /
attention operator as ``p`` sequential tensor-parallel shards.  The paper
introduces this baseline because partitioned-kernel timing differs from
whole-kernel timing "primarily due to the kernel implementation" — and in
Fig. 10(j)(k) Inter-Th actually *beats* Inter-Op on the largest models,
where the accumulated duration of four partitioned kernels undercuts the one
giant kernel.  Our cost model reproduces that via the giant-panel efficiency
rolloff (see :mod:`repro.models.costs`).
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.models.ops import OpDesc, attention_op
from repro.models.partition import PipelineStage
from repro.parallel.inter_op import InterOpStrategy
from repro.serving.request import Batch

__all__ = ["InterTheoreticalStrategy", "partition_op_for_theoretical"]


def partition_op_for_theoretical(op: OpDesc, tp: int) -> List[OpDesc]:
    """Replace one whole op with its ``tp`` sequential intra-op shards.

    GEMMs shard along their Megatron split dimension (``split_dim``);
    attention shards by heads; replicated ops (layernorm, embedding) are
    returned unchanged — intra-op replicates them, so there is no
    partitioned variant to borrow.
    """
    if tp < 1:
        raise ConfigError(f"tp must be >= 1, got {tp}")
    if tp == 1:
        return [op]
    if op.op == "gemm":
        m, k, n = op.gemm_shape  # type: ignore[misc]
        if op.split_dim == "n":
            if n % tp:
                raise ConfigError(f"{op.name}: n={n} not divisible by tp={tp}")
            shard = op.with_gemm_shape(m, k, n // tp)
        elif op.split_dim == "k":
            if k % tp:
                raise ConfigError(f"{op.name}: k={k} not divisible by tp={tp}")
            shard = op.with_gemm_shape(m, k // tp, n)
        else:
            # No TP split recorded: treat as replicated (no shards).
            return [op]
        return [shard] * tp
    if op.op == "attention":
        if op.attn_heads % tp:
            raise ConfigError(
                f"{op.name}: heads={op.attn_heads} not divisible by tp={tp}"
            )
        shard = attention_op(
            op.name,
            op.layer,
            batch=op.attn_batch,
            q_len=op.attn_q_len,
            ctx_len=op.attn_ctx_len,
            heads=op.attn_heads // tp,
            head_dim=op.attn_head_dim,
        )
        return [shard] * tp
    return [op]


class InterTheoreticalStrategy(InterOpStrategy):
    """Pipeline whose stages run intra-op partitioned kernels sequentially."""

    name = "inter_th"

    def __init__(self, model, node, *, profiler=None, num_stages=None, tp=None):
        super().__init__(model, node, profiler=profiler, num_stages=num_stages)
        #: Partitioning degree the shards are borrowed from (the intra-op
        #: configuration of the same node).
        self.tp = tp or node.num_gpus
        model.validate_tp(self.tp)

    def stage_ops(self, batch: Batch, stage: PipelineStage) -> List[OpDesc]:
        whole_ops = super().stage_ops(batch, stage)
        ops: List[OpDesc] = []
        for op in whole_ops:
            ops.extend(partition_op_for_theoretical(op, self.tp))
        return ops
