"""Parallelism strategies: the paper's two baselines, Inter-Th, and Liger.

All four implement :class:`~repro.parallel.base.ParallelStrategy` and are
interchangeable from the serving layer:

* :class:`IntraOpStrategy` — Megatron tensor parallelism (low latency,
  throughput capped by exposed collectives);
* :class:`InterOpStrategy` — GPipe-style equal-stage pipeline (high
  throughput, no latency benefit);
* :class:`InterTheoreticalStrategy` — pipeline running intra-op partitioned
  kernels sequentially (§4.1's Inter-Th);
* :class:`InterleavedStrategy` — Liger's interleaved parallelism.
"""

from repro.parallel.base import ParallelStrategy, instantiate_op
from repro.parallel.hybrid import HybridStrategy
from repro.parallel.inter_op import InterOpStrategy
from repro.parallel.inter_theoretical import (
    InterTheoreticalStrategy,
    partition_op_for_theoretical,
)
from repro.parallel.intra_op import IntraOpStrategy

__all__ = [
    "ParallelStrategy",
    "instantiate_op",
    "IntraOpStrategy",
    "InterOpStrategy",
    "HybridStrategy",
    "InterTheoreticalStrategy",
    "partition_op_for_theoretical",
    "InterleavedStrategy",
]


def __getattr__(name):
    if name == "InterleavedStrategy":
        from repro.parallel.interleaved import InterleavedStrategy

        return InterleavedStrategy
    raise AttributeError(f"module 'repro.parallel' has no attribute {name!r}")
