"""Inter-operator (pipeline) parallelism — the GPipe-style baseline (§4.1).

The model is split into equal contiguous stages, one per device; a batch
flows through the stages with a single point-to-point activation transfer at
each boundary.  Pipelining falls out of stream FIFO order plus collective
rendezvous: each stage's stream processes batches in arrival order, and a
stage's receive kernel blocks (occupying only its copy-engine footprint)
until the upstream send is admitted.  Throughput approaches ``p×`` a single
device once the pipeline fills; latency is never better than a full
single-device traversal — the §2.2.2 trade-off.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.models.ops import OpDesc, p2p_op
from repro.models.partition import PipelineStage, boundary_bytes, pipeline_stages
from repro.parallel.base import ParallelStrategy, instantiate_op
from repro.serving.request import Batch, Phase
from repro.sim.events import CudaEvent
from repro.sim.stream import Stream
from repro.units import FP16_BYTES

__all__ = ["InterOpStrategy"]


class InterOpStrategy(ParallelStrategy):
    """Equal-stage pipeline parallelism with p2p boundary transfers."""

    name = "inter"

    def __init__(self, model, node, *, profiler=None, num_stages: Optional[int] = None):
        super().__init__(model, node, profiler=profiler)
        self.stages: List[PipelineStage] = pipeline_stages(
            model, num_stages or node.num_gpus
        )
        # A pipeline batch occupies one stage at a time: its steady-state
        # per-device memory footprint is 1/num_stages of the shard.
        self.memory_share = 1.0 / len(self.stages)

    def bind(self, machine, host, *, track_memory=None) -> None:
        super().bind(machine, host, track_memory=track_memory)
        # Compute stream plus dedicated ingress/egress transfer streams per
        # stage device: boundary transfers must not block the compute stream,
        # or the pipeline degrades to synchronous handoffs (a stage would be
        # unable to start batch k+1 until downstream accepted batch k).
        self._streams: Dict[int, Stream] = {
            s.device: machine.gpu(s.device).stream("main") for s in self.stages
        }
        self._pipe_in: Dict[int, Stream] = {
            s.device: machine.gpu(s.device).stream("pipe_in") for s in self.stages
        }
        self._pipe_out: Dict[int, Stream] = {
            s.device: machine.gpu(s.device).stream("pipe_out") for s in self.stages
        }

    # ------------------------------------------------------------------
    def stage_ops(self, batch: Batch, stage: PipelineStage) -> List[OpDesc]:
        """The (whole, unpartitioned) op sequence of one stage."""
        return self.ops_for_batch(batch, tp=1, layers=stage.layers)

    def _boundary_bytes(self, batch: Batch) -> float:
        if batch.phase is Phase.PREFILL:
            return boundary_bytes(self.model, batch.size, batch.seq_len)
        # Decode steps move one token's activations per request.
        return float(batch.size * self.model.hidden_size * FP16_BYTES)

    # ------------------------------------------------------------------
    def submit_batch(self, batch: Batch) -> None:
        machine = self._require_bound()
        host = self.host
        assert host is not None
        host.catch_up()

        bid = batch.batch_id
        total = 0
        kernel_plan: List[List[tuple]] = []  # per-stage [(stream, kernel)]
        for i, stage in enumerate(self.stages):
            dev = stage.device
            entries = []
            for op in self.stage_ops(batch, stage):
                kernels = instantiate_op(op, [dev], bid, self.profiler)
                entries.append((self._streams[dev], kernels[dev]))
                total += 1
            kernel_plan.append(entries)
            if i > 0:
                total += 2  # the boundary transfer pair

        self.track_batch(batch, total)

        # Launch stage by stage with event-decoupled boundary transfers:
        #   main[i]:     ...stage-i ops... → record(done_i)
        #   pipe_out[i]: wait(done_i) → send_i
        #   pipe_in[i+1]:            recv_i → record(xfer_i)
        #   main[i+1]:   wait(xfer_i) → ...stage-(i+1) ops...
        # pipe streams serialize transfers per link while compute streams
        # keep flowing — real double-buffered pipelining.
        for i, stage in enumerate(self.stages):
            dev = stage.device
            if i > 0:
                prev = self.stages[i - 1]
                done = CudaEvent(f"stage{i-1}_done_b{bid}")
                host.record_event(self._streams[prev.device], done)
                xfer = instantiate_op(
                    p2p_op(
                        f"pipe_xfer_s{i}",
                        stage.layers[0],
                        self._boundary_bytes(batch),
                        prev.device,
                        dev,
                    ),
                    [prev.device, dev],
                    bid,
                    self.profiler,
                )
                host.wait_event(self._pipe_out[prev.device], done)
                host.launch_kernel(self._pipe_out[prev.device], xfer[prev.device])
                arrived = CudaEvent(f"stage{i}_input_b{bid}")
                host.launch_kernel(self._pipe_in[dev], xfer[dev])
                host.record_event(self._pipe_in[dev], arrived)
                host.wait_event(self._streams[dev], arrived)
            for stream, kernel in kernel_plan[i]:
                host.launch_kernel(stream, kernel)
