"""Hybrid tensor×pipeline parallelism (extension beyond the paper).

The paper compares pure intra-op (tp = p) against pure inter-op (pp = p).
Production systems often deploy the middle ground — e.g. tp=2 within
NVLink-paired GPUs and pp=2 across pairs — trading some of intra-op's
latency for some of inter-op's throughput.  This strategy implements that
design point so Liger can be compared against it: stage *s* owns the GPU
group ``[s·tp, (s+1)·tp)``, executes its layer range tensor-parallel within
the group (all-reduces stay inside the group), and hands activations to the
next stage with one rank-to-rank transfer per tensor rank, decoupled from
the compute streams with events exactly like
:class:`~repro.parallel.inter_op.InterOpStrategy`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.models.ops import p2p_op
from repro.models.partition import PipelineStage, boundary_bytes, pipeline_stages
from repro.parallel.base import ParallelStrategy, instantiate_op
from repro.serving.request import Batch, Phase
from repro.sim.events import CudaEvent
from repro.sim.stream import Stream
from repro.units import FP16_BYTES

__all__ = ["HybridStrategy"]


class HybridStrategy(ParallelStrategy):
    """tp-way tensor parallelism inside pp pipeline stages."""

    name = "hybrid"

    def __init__(self, model, node, *, profiler=None, tp: Optional[int] = None,
                 pp: Optional[int] = None, track_memory: bool = True):
        super().__init__(model, node, profiler=profiler, track_memory=track_memory)
        p = node.num_gpus
        if tp is None and pp is None:
            # Default: the squarest factorisation, tp as large as possible.
            tp = 1
            for cand in range(int(p**0.5), 0, -1):
                if p % cand == 0:
                    tp = p // cand
                    break
        elif tp is None:
            tp = p // pp  # type: ignore[operator]
        pp = p // tp
        if tp * pp != p:
            raise ConfigError(f"tp({tp})×pp({pp}) must equal num_gpus({p})")
        model.validate_tp(tp)
        self.tp = tp
        self.pp = pp
        self.stages: List[PipelineStage] = pipeline_stages(model, pp)
        self.memory_share = 1.0 / pp

    # ------------------------------------------------------------------
    def stage_gpus(self, stage_index: int) -> List[int]:
        """The GPU group owning one pipeline stage."""
        start = stage_index * self.tp
        return list(range(start, start + self.tp))

    def bind(self, machine, host, *, track_memory=None) -> None:
        super().bind(machine, host, track_memory=track_memory)
        self._main: Dict[int, Stream] = {}
        self._pipe_in: Dict[int, Stream] = {}
        self._pipe_out: Dict[int, Stream] = {}
        for g in range(self.node.num_gpus):
            self._main[g] = machine.gpu(g).stream("main")
            self._pipe_in[g] = machine.gpu(g).stream("pipe_in")
            self._pipe_out[g] = machine.gpu(g).stream("pipe_out")

    def _boundary_bytes(self, batch: Batch) -> float:
        if batch.phase is Phase.PREFILL:
            return boundary_bytes(self.model, batch.size, batch.seq_len)
        return float(batch.size * self.model.hidden_size * FP16_BYTES)

    # ------------------------------------------------------------------
    def submit_batch(self, batch: Batch) -> None:
        self._require_bound()
        host = self.host
        assert host is not None
        host.catch_up()
        bid = batch.batch_id

        # Build per-stage kernel plans first so the total count is known.
        stage_plans: List[List[Dict[int, object]]] = []
        total = 0
        for i, stage in enumerate(self.stages):
            gpus = self.stage_gpus(i)
            plan = []
            for op in self.ops_for_batch(batch, tp=self.tp, layers=stage.layers):
                kernels = instantiate_op(op, gpus, bid, self.profiler)
                plan.append(kernels)
                total += len(kernels)
            stage_plans.append(plan)
            if i > 0:
                total += 2 * self.tp  # one transfer pair per tensor rank

        self.track_batch(batch, total)

        for i, stage in enumerate(self.stages):
            gpus = self.stage_gpus(i)
            if i > 0:
                prev_gpus = self.stage_gpus(i - 1)
                for rank in range(self.tp):
                    src, dst = prev_gpus[rank], gpus[rank]
                    done = CudaEvent(f"h_s{i-1}r{rank}_done_b{bid}")
                    host.record_event(self._main[src], done)
                    xfer = instantiate_op(
                        p2p_op(
                            f"hybrid_xfer_s{i}r{rank}",
                            stage.layers[0],
                            self._boundary_bytes(batch),
                            src,
                            dst,
                        ),
                        [src, dst],
                        bid,
                        self.profiler,
                    )
                    host.wait_event(self._pipe_out[src], done)
                    host.launch_kernel(self._pipe_out[src], xfer[src])
                    arrived = CudaEvent(f"h_s{i}r{rank}_in_b{bid}")
                    host.launch_kernel(self._pipe_in[dst], xfer[dst])
                    host.record_event(self._pipe_in[dst], arrived)
                    host.wait_event(self._main[dst], arrived)
            for kernels in stage_plans[i]:
                for gpu_id, kernel in kernels.items():
                    host.launch_kernel(self._main[gpu_id], kernel)
