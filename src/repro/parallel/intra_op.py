"""Intra-operator (tensor) parallelism — the Megatron-LM baseline (§4.1).

Every operator is partitioned across all GPUs of the node; each device runs
its shard of every kernel and the devices synchronise with two all-reduces
per transformer layer.  Batches are processed strictly one at a time: each
batch's kernels are appended to a single per-GPU stream, so a new batch's
computation starts only when the previous batch fully drains — which is
exactly why the intra-op approach saturates early ("computation units being
left idle when communicating", §2.2.1): during every all-reduce the device's
compute pipeline idles.
"""

from __future__ import annotations

from typing import Dict, List

from repro.parallel.base import ParallelStrategy, instantiate_op
from repro.serving.request import Batch
from repro.sim.stream import Stream

__all__ = ["IntraOpStrategy"]


class IntraOpStrategy(ParallelStrategy):
    """Megatron-style tensor parallelism over all GPUs of the node."""

    name = "intra"

    def bind(self, machine, host, *, track_memory=None) -> None:
        super().bind(machine, host, track_memory=track_memory)
        # One in-order stream per device; TP executes lock-step across them.
        self._streams: Dict[int, Stream] = {
            g: machine.gpu(g).stream("main") for g in range(self.node.num_gpus)
        }

    def submit_batch(self, batch: Batch) -> None:
        machine = self._require_bound()
        host = self.host
        assert host is not None
        # The launcher ranks were idle waiting for work; they cannot have
        # issued anything before the batch arrived.
        host.catch_up()

        gpus = list(range(self.node.num_gpus))
        ops = self.ops_for_batch(batch, tp=self.node.num_gpus)
        total = 0
        per_op_kernels: List[Dict[int, object]] = []
        for op in ops:
            kernels = instantiate_op(op, gpus, batch.batch_id, self.profiler)
            per_op_kernels.append(kernels)
            total += len(kernels)
        self.track_batch(batch, total)
        # Launch in op order, per rank; all ranks mirror the same sequence.
        for kernels in per_op_kernels:
            for gpu_id, kernel in kernels.items():
                host.launch_kernel(self._streams[gpu_id], kernel)
