"""The parallel-strategy interface shared by the baselines and Liger.

A :class:`ParallelStrategy` turns arriving :class:`~repro.serving.request.Batch`
objects into simulator kernels on the machine's streams.  The serving server
(:mod:`repro.serving.server`) owns the clock: it calls
:meth:`ParallelStrategy.submit_batch` at each batch's arrival time, and the
strategy reports completions through registered callbacks.

Completion detection is uniform: every simulator kernel carries its
``batch_id``; the strategy counts instantiated kernels per batch and an
:meth:`~repro.sim.gpu.Machine.on_kernel_complete` observer decrements the
count — when it hits zero the batch is done.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError, SimulationError
from repro.hw.devices import NodeSpec
from repro.models.kvcache import decode_step_ops
from repro.models.ops import OpDesc
from repro.models.specs import ModelSpec
from repro.models.transformer import prefill_ops
from repro.profiling.profiler import OpProfiler
from repro.serving.request import Batch, Phase
from repro.sim.gpu import Machine
from repro.sim.host import Host
from repro.sim.kernel import Kernel
from repro.sim.memory import NodeMemoryModel

__all__ = ["ParallelStrategy", "instantiate_op"]

BatchCallback = Callable[[Batch, float], None]


def instantiate_op(
    op: OpDesc,
    gpus: List[int],
    batch_id: int,
    profiler: OpProfiler,
) -> Dict[int, Kernel]:
    """Materialise one op as simulator kernels, one per participating GPU.

    Compute-like ops become independent per-GPU kernel clones (each device
    executes its shard); ``all_reduce`` / ``all_to_all`` become rendezvous
    collectives over ``gpus``; ``p2p`` becomes a two-member collective over
    its endpoints.
    """
    if not gpus:
        raise ConfigError(f"op {op.name}: no target GPUs")
    if op.op == "all_reduce":
        coll = profiler.collectives.make_allreduce(
            op.comm_bytes,
            gpus,
            batch_id=batch_id,
            layer=op.layer,
            name=f"{op.name}_b{batch_id}",
            op=op.op,
        )
        return dict(coll.members)
    if op.op == "all_to_all":
        coll = profiler.collectives.make_all_to_all(
            op.comm_bytes,
            gpus,
            batch_id=batch_id,
            layer=op.layer,
            name=f"{op.name}_b{batch_id}",
            op=op.op,
        )
        return dict(coll.members)
    if op.op == "p2p":
        coll = profiler.collectives.make_p2p(
            op.comm_bytes,
            op.p2p_src,
            op.p2p_dst,
            batch_id=batch_id,
            layer=op.layer,
            name=f"{op.name}_b{batch_id}",
        )
        return dict(coll.members)
    duration = profiler.duration(op)
    occupancy = profiler.occupancy(op)
    mem = profiler.memory_intensity(op)
    return {
        gpu: Kernel(
            name=f"{op.name}_b{batch_id}@g{gpu}",
            kind=op.kind,
            duration=duration,
            occupancy=occupancy,
            memory_intensity=mem,
            batch_id=batch_id,
            layer=op.layer,
            op=op.op,
            decomposable=op.decomposable,
            meta={"desc": op},
        )
        for gpu in gpus
    }


class ParallelStrategy(abc.ABC):
    """Base class: model/node binding, batch bookkeeping, op construction.

    Subclasses implement :meth:`submit_batch` (and may override
    :meth:`bind` to create their stream layout).
    """

    #: Strategy identifier used by the serving API ("intra", "inter", ...).
    name: str = "base"

    #: Fraction of a batch's per-device workspace resident at any instant.
    #: 1.0 for tensor-parallel execution (the whole shard lives on every
    #: device for the batch's lifetime); pipelines override with
    #: ``1/num_stages`` (a batch occupies one stage at a time).
    memory_share: float = 1.0

    def __init__(
        self,
        model: ModelSpec,
        node: NodeSpec,
        *,
        profiler: Optional[OpProfiler] = None,
        track_memory: bool = True,
    ) -> None:
        self.model = model
        self.node = node
        self.profiler = profiler or OpProfiler(node)
        self.track_memory = track_memory
        self.memory: Optional[NodeMemoryModel] = None
        self.machine: Optional[Machine] = None
        self.host: Optional[Host] = None
        self._callbacks: List[BatchCallback] = []
        self._pending_kernels: Dict[int, int] = {}
        self._open_batches: Dict[int, Batch] = {}
        self._closed_batches: set = set()
        self._memory_reserved: set = set()
        self.batches_completed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(
        self,
        machine: Machine,
        host: Host,
        *,
        track_memory: Optional[bool] = None,
    ) -> None:
        """Attach to a machine/host pair; called once by the server.

        ``track_memory`` fixes the memory-tracking mode at bind time:
        ``True``/``False`` override the constructor's setting, ``None``
        keeps it.  Servers that account memory at sequence granularity
        (lifecycle, generation) bind with ``track_memory=False`` instead
        of mutating the strategy after construction.
        """
        if self.machine is not None:
            raise ConfigError(f"strategy {self.name} is already bound")
        if machine.node is not self.node:
            raise ConfigError("strategy node and machine node differ")
        if track_memory is not None:
            self.track_memory = track_memory
        self.machine = machine
        self.host = host
        if self.track_memory:
            self.memory = NodeMemoryModel(self.model, self.node)
        machine.on_kernel_complete(self._on_kernel_complete)

    def on_batch_complete(self, cb: BatchCallback) -> None:
        """Register ``cb(batch, completion_time_us)``."""
        self._callbacks.append(cb)

    @abc.abstractmethod
    def submit_batch(self, batch: Batch) -> None:
        """Called by the server at the batch's arrival time."""

    # ------------------------------------------------------------------
    # Op construction
    # ------------------------------------------------------------------
    def ops_for_batch(self, batch: Batch, tp: int, layers=None) -> List[OpDesc]:
        """The per-device op sequence this batch requires."""
        if batch.phase is Phase.PREFILL:
            return prefill_ops(self.model, batch.size, batch.seq_len, tp, layers=layers)
        return decode_step_ops(
            self.model, batch.size, batch.context_len, tp, layers=layers
        )

    # ------------------------------------------------------------------
    # Completion tracking
    #
    # Two usage styles:
    #   * static (the baselines): ``track_batch(batch, n)`` — all kernels are
    #     known up front; the batch completes when n kernels retire.
    #   * dynamic (Liger): ``register_batch`` at submit, ``add_pending`` as
    #     kernels are launched round by round (runtime decomposition changes
    #     the count), ``close_batch`` when the batch's FuncVec drains.
    # ------------------------------------------------------------------
    def register_batch(self, batch: Batch) -> None:
        """Open a batch for dynamic kernel accounting.

        Device memory is *not* reserved here: a queued batch waits in host
        memory.  The workspace (and decode KV cache) is reserved lazily when
        the batch's first kernel retires — i.e. once it is actually
        executing — and released at completion, so backlog depth does not
        fictitiously exhaust HBM.
        """
        if batch.batch_id in self._open_batches:
            raise ConfigError(f"batch {batch.batch_id} submitted twice")
        self._pending_kernels[batch.batch_id] = 0
        self._open_batches[batch.batch_id] = batch

    def _reserve_batch_memory(self, batch: Batch) -> None:
        if self.memory is None or batch.batch_id in self._memory_reserved:
            return
        self.memory.reserve_batch(
            batch.batch_id,
            batch.size,
            batch.seq_len,
            context=batch.context_len if batch.phase is Phase.DECODE else 0,
            share=self.memory_share,
        )
        self._memory_reserved.add(batch.batch_id)

    def add_pending(self, batch_id: int, num_kernels: int) -> None:
        """Account ``num_kernels`` newly-launched kernels for an open batch."""
        if batch_id not in self._open_batches:
            raise ConfigError(f"batch {batch_id} is not open")
        if num_kernels < 0:
            raise ConfigError("num_kernels must be >= 0")
        self._pending_kernels[batch_id] += num_kernels

    def close_batch(self, batch_id: int, time: float) -> None:
        """Mark that no further kernels will be launched for this batch."""
        if batch_id not in self._open_batches:
            raise ConfigError(f"batch {batch_id} is not open")
        self._closed_batches.add(batch_id)
        self._maybe_finish(batch_id, time)

    def track_batch(self, batch: Batch, num_kernels: int) -> None:
        """Static style: all ``num_kernels`` known at submit time."""
        if num_kernels < 1:
            raise ConfigError(f"batch {batch.batch_id}: no kernels to track")
        self.register_batch(batch)
        self.add_pending(batch.batch_id, num_kernels)
        self._closed_batches.add(batch.batch_id)

    def _on_kernel_complete(self, kernel: Kernel, time: float) -> None:
        bid = kernel.batch_id
        remaining = self._pending_kernels.get(bid)
        if remaining is None:
            return  # infrastructure kernel or foreign batch
        if remaining <= 0:
            raise SimulationError(f"batch {bid}: completion underflow")
        # First retired kernel ⇒ the batch is executing: claim its workspace.
        self._reserve_batch_memory(self._open_batches[bid])
        self._pending_kernels[bid] = remaining - 1
        self._maybe_finish(bid, time)

    def _maybe_finish(self, bid: int, time: float) -> None:
        if bid not in self._closed_batches:
            return
        if self._pending_kernels.get(bid, 1) != 0:
            return
        batch = self._open_batches.pop(bid)
        del self._pending_kernels[bid]
        self._closed_batches.discard(bid)
        self.batches_completed += 1
        if self.memory is not None:
            self.memory.release_batch(bid)
            self._memory_reserved.discard(bid)
        self._finish_batch(batch, time)

    def _finish_batch(self, batch: Batch, time: float) -> None:
        """Hook: invoked when a batch's last kernel retires."""
        for cb in self._callbacks:
            cb(batch, time)

    # ------------------------------------------------------------------
    @property
    def inflight_batches(self) -> int:
        return len(self._open_batches)

    def open_batch_ids(self) -> List[int]:
        """Ids of batches submitted but not yet completed (diagnostics)."""
        return sorted(self._open_batches)

    def _require_bound(self) -> Machine:
        if self.machine is None or self.host is None:
            raise ConfigError(f"strategy {self.name} used before bind()")
        return self.machine
