"""Interleaved parallelism (§3.1) — Liger as a serving strategy.

Keeps the intra-operator partitioning of every operator (so a lone batch
executes exactly like the Intra-Op baseline and enjoys its latency), but
overlaps the communication of each batch with the computation of *other*
in-flight batches via the Liger runtime: function assembly → Algorithm 1 →
two streams per GPU with hybrid synchronization.

At a low arrival rate the runtime degenerates to intra-op; as the rate
rises, batches start overlapping and throughput grows past the intra-op
ceiling — the paper's central claim.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.core.assembly import FunctionAssembler
from repro.core.config import LigerConfig
from repro.core.contention import AdaptiveAnticipator, ContentionAnticipator
from repro.core.runtime import LigerRuntime
from repro.models.ops import OpDesc
from repro.parallel.base import ParallelStrategy
from repro.profiling.contention_profiler import ContentionProfiler
from repro.profiling.profiler import OpProfiler
from repro.serving.request import Batch
from repro.sim.interconnect import NcclConfig

__all__ = ["InterleavedStrategy"]


class InterleavedStrategy(ParallelStrategy):
    """Liger's interleaved parallelism over all GPUs of the node."""

    name = "liger"

    def __init__(
        self,
        model,
        node,
        *,
        profiler: Optional[OpProfiler] = None,
        config: Optional[LigerConfig] = None,
    ) -> None:
        self.config = config or LigerConfig()
        if profiler is None:
            nccl = (
                NcclConfig().reduced()
                if self.config.reduce_nccl_channels
                else NcclConfig()
            )
            profiler = OpProfiler(
                node, nccl=nccl, memoize=self.config.enable_sim_memos
            )
        super().__init__(model, node, profiler=profiler)
        self.runtime: Optional[LigerRuntime] = None

    # ------------------------------------------------------------------
    def _batch_ops(self, batch: Batch) -> List[OpDesc]:
        # Interleaved parallelism partitions exactly like intra-op (§3.1).
        return self.ops_for_batch(batch, tp=self.node.num_gpus)

    def bind(self, machine, host, *, track_memory=None) -> None:
        super().bind(machine, host, track_memory=track_memory)
        if not self.config.enable_sim_memos:
            machine.slowdown_memo = False
        if self.config.adaptive_anticipation:
            # Extension: no offline pass — learn factors while serving.
            anticipator = AdaptiveAnticipator()

            def _feed(kernel, end_time):
                started = kernel.meta.get("_started_at")
                if started is not None and kernel.batch_id >= 0:
                    anticipator.observe(
                        kernel.kind, kernel.duration, end_time - started
                    )

            machine.on_kernel_complete(_feed)
        else:
            factors = self.config.contention_factors
            if factors is None:
                # The offline procedure (Fig. 5): profile contention factors
                # on the deployment hardware before serving.
                factors = ContentionProfiler(
                    self.node, self.profiler, contention=machine.contention
                ).profile(self.model)
            anticipator = ContentionAnticipator(factors)
        self.anticipator = anticipator
        assembler = FunctionAssembler(
            self._batch_ops,
            self.profiler,
            # _batch_ops is pure in (phase, size, seq_len, context_len) —
            # the assembly-cache contract — because model and TP degree are
            # fixed for the strategy's lifetime.
            cache_size=128 if self.config.enable_assembly_cache else 0,
        )
        self.runtime = LigerRuntime(
            machine,
            host,
            self.profiler,
            assembler,
            anticipator,
            self.config,
            on_batch_launched=self.add_pending,
            on_batch_drained=self._on_drained,
        )
        # Memory-aware admission (extension): a batch moves from the waiting
        # queue to the processing list only if its KV/workspace reservation
        # fits the free HBM; otherwise it waits for an in-flight batch to
        # release.  Bounds interleaving depth by memory, not just config.
        self.runtime.scheduler.admission_check = self._admit_memory

    def _admit_memory(self, funcvec) -> bool:
        if self.memory is None:
            return True
        from repro.errors import OutOfMemoryError

        batch = funcvec.batch
        if batch.batch_id in self._memory_reserved:
            return True
        try:
            self._reserve_batch_memory(batch)
            return True
        except OutOfMemoryError:
            return False

    def _finish_batch(self, batch, time) -> None:
        super()._finish_batch(batch, time)
        # A completed batch released its reservation: memory-blocked work
        # in the waiting queue may now be admittable.
        if self.runtime is not None:
            self.runtime.maybe_kick()

    def _on_drained(self, batch_id: int) -> None:
        machine = self._require_bound()
        self.close_batch(batch_id, machine.engine.now)

    # ------------------------------------------------------------------
    def submit_batch(self, batch: Batch) -> None:
        self._require_bound()
        assert self.runtime is not None
        self.register_batch(batch)
        self.runtime.enqueue(batch)

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """Execution counters (rounds, overlap fill, decompositions)."""
        if self.runtime is None:
            return None
        return self.runtime.stats

    def perf_counters(self) -> dict:
        """Hot-path cache statistics (plan cache + assembly cache).

        The serving session exports these as ``repro_perf_*`` gauges when
        observability is attached; the perf harness reads them directly.
        """
        if self.runtime is None:
            return {}
        assembler = self.runtime.assembler
        out = {
            "assembly_cache_hits": assembler.cache_hits,
            "assembly_cache_misses": assembler.cache_misses,
            "assembly_cache_evictions": assembler.cache_evictions,
            "assembly_build_seconds": assembler.build_seconds,
        }
        timeline = self.runtime.timeline
        if timeline is not None:
            out.update(
                timeline_builds=timeline.timeline_builds,
                timeline_replays=timeline.timeline_replays,
                timeline_bails=timeline.timeline_bails,
                batched_events=timeline.batched_events,
            )
        # Fan-out workers: set by repro.perf.fanout in worker processes so
        # merged BENCH cells record which parallelism produced them (0 =
        # in-process sequential run).
        out["fanout_workers"] = int(os.environ.get("LIGER_FANOUT_WORKERS", 0))
        cache = self.runtime.plan_cache
        if cache is not None:
            out.update(
                plan_cache_hits=cache.hits,
                plan_cache_misses=cache.misses,
                plan_cache_evictions=cache.evictions,
                plan_cache_uncacheable=cache.uncacheable,
                plan_cache_entries=len(cache),
                plan_build_seconds=cache.build_seconds,
            )
            # Per-policy split: the policy id is a cache-key dimension, so
            # aggregate counters alone can't attribute misses to a policy.
            for pid in sorted(set(cache.per_policy) | {cache.policy_id}):
                row = cache.per_policy.get(pid, {})
                for counter in ("hits", "misses", "evictions", "uncacheable"):
                    out[f"plan_cache_{pid}_{counter}"] = row.get(counter, 0)
        return out

    def perf_gauge_help(self) -> dict:
        """Help text for the strategy-specific (per-policy) perf gauges.

        The serving session merges these with its static gauge table — the
        keys are dynamic (they embed the policy id) so they can't live in a
        class-level constant there.
        """
        if self.runtime is None or self.runtime.plan_cache is None:
            return {}
        cache = self.runtime.plan_cache
        out = {}
        for pid in sorted(set(cache.per_policy) | {cache.policy_id}):
            out[f"plan_cache_{pid}_hits"] = (
                f"Schedule-plan cache hits under the {pid} policy."
            )
            out[f"plan_cache_{pid}_misses"] = (
                f"Schedule-plan cache misses under the {pid} policy."
            )
            out[f"plan_cache_{pid}_evictions"] = (
                f"Schedule-plan cache evictions under the {pid} policy."
            )
            out[f"plan_cache_{pid}_uncacheable"] = (
                f"Unfingerprintable planning calls under the {pid} policy."
            )
        return out