"""Model substrate: specs, cost model, and forward-pass operator sequences.

Everything the paper gets from FasterTransformer + real models is rebuilt
here analytically: Table 1's model specifications, a roofline kernel cost
model per GPU, and the Megatron-partitioned per-device operator sequences
for both prefill ("general tasks") and KV-cache decode ("generative tasks").
"""

from repro.models.costs import CostBreakdown, KernelCostModel
from repro.models.kvcache import decode_layer_ops, decode_step_ops
from repro.models.moe import expert_capacity, moe_ffn_ops, moe_layer_ops
from repro.models.ops import (
    OpDesc,
    all_to_all_op,
    allreduce_op,
    attention_op,
    elementwise_op,
    gemm_op,
    p2p_op,
)
from repro.models.partition import (
    PipelineStage,
    boundary_bytes,
    check_placement,
    pipeline_stages,
)
from repro.models.specs import (
    GLM_130B,
    MODELS,
    MOE_16E,
    OPT_8B,
    OPT_13B,
    OPT_30B,
    OPT_66B,
    OPT_175B,
    ModelSpec,
)
from repro.models.transformer import embed_ops, layer_ops, lm_head_ops, prefill_ops

__all__ = [
    "ModelSpec",
    "MODELS",
    "OPT_8B",
    "OPT_13B",
    "OPT_30B",
    "OPT_66B",
    "OPT_175B",
    "GLM_130B",
    "MOE_16E",
    "KernelCostModel",
    "CostBreakdown",
    "OpDesc",
    "gemm_op",
    "attention_op",
    "elementwise_op",
    "allreduce_op",
    "all_to_all_op",
    "p2p_op",
    "layer_ops",
    "moe_layer_ops",
    "moe_ffn_ops",
    "expert_capacity",
    "prefill_ops",
    "embed_ops",
    "lm_head_ops",
    "decode_layer_ops",
    "decode_step_ops",
    "PipelineStage",
    "pipeline_stages",
    "boundary_bytes",
    "check_placement",
]
