"""Generative (incremental sampling) phase with a KV cache (§4.3).

During incremental sampling the model processes **one token per request per
step**: the query length is 1, attention reads the whole cached context, and
every GEMM has only ``batch`` rows.  Computational intensity is therefore far
lower than prefill — the property that makes Liger's gains "relatively
weaker" on generative workloads (the communication volume shrinks with the
token count just like the compute does, but latency floors don't).

The kernel sequence per layer matches :mod:`repro.models.transformer` with
``m = batch``, plus a KV-cache append after the QKV projection.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.models.ops import (
    OpDesc,
    allreduce_op,
    attention_op,
    elementwise_op,
    gemm_op,
)
from repro.models.specs import ModelSpec
from repro.models.transformer import lm_head_ops
from repro.sim.kernel import KernelKind
from repro.units import FP16_BYTES

__all__ = ["decode_layer_ops", "decode_step_ops", "batch_kv_bytes"]


def batch_kv_bytes(model: ModelSpec, batch, tp: int) -> float:
    """Per-device KV-cache bytes one serving batch holds while in flight.

    Accounting is per *request*, not per padded batch — KV lives in paged
    per-sequence allocations, so a decode batch's footprint is the sum of
    each member's true context (cached tokens plus the one being generated),
    and a prefill batch's is the KV it writes for each member's own prompt.
    This is what the serving-level :class:`~repro.serving.overload.
    KVCacheAccountant` charges against per-GPU capacity.
    """
    from repro.serving.request import Phase  # local: avoid a package cycle

    if tp < 1:
        raise ConfigError(f"tp must be >= 1, got {tp}")
    total = 0.0
    for req in batch.requests:
        if req.phase is Phase.DECODE:
            tokens = req.context_len + 1
        else:
            tokens = req.seq_len
        total += model.kv_cache_bytes(1, tokens, tp=tp)
    return total


def decode_layer_ops(
    model: ModelSpec,
    batch: int,
    context: int,
    tp: int,
    layer: int,
) -> List[OpDesc]:
    """One transformer layer of a single decode step on one device."""
    _validate(model, batch, context, tp)
    m = batch  # one new token per request
    h = model.hidden_size
    hp = h // tp
    ffn_p = model.ffn_size // tp
    heads_p = model.num_heads // tp
    ar_bytes = float(m * h * FP16_BYTES)

    ops: List[OpDesc] = [
        elementwise_op(f"ln1_L{layer}", layer, m * h),
        gemm_op(f"qkv_gemm_L{layer}", layer, m, h, 3 * hp, split_dim="n"),
        OpDesc(
            name=f"kv_append_L{layer}",
            op="kv_append",
            kind=KernelKind.MEMORY,
            layer=layer,
            elems=float(2 * m * hp),
            rw_factor=2.0,
        ),
        attention_op(
            f"attention_L{layer}",
            layer,
            batch=batch,
            q_len=1,
            ctx_len=context + 1,  # cached context plus the new token
            heads=heads_p,
            head_dim=model.head_dim,
        ),
        gemm_op(f"attn_out_gemm_L{layer}", layer, m, hp, h, split_dim="k"),
    ]
    if tp > 1:
        ops.append(allreduce_op(f"allreduce_attn_L{layer}", layer, ar_bytes))
    if model.is_moe:
        # Routed FFN: one new token per request, expert parallelism = tp.
        from repro.models.moe import moe_ffn_ops

        ops += moe_ffn_ops(model, m, tp, layer)
        return ops
    ops += [
        elementwise_op(f"ln2_L{layer}", layer, m * h),
        gemm_op(f"mlp_gemm1_L{layer}", layer, m, h, ffn_p, split_dim="n"),
        gemm_op(f"mlp_gemm2_L{layer}", layer, m, ffn_p, h, split_dim="k"),
    ]
    if tp > 1:
        ops.append(allreduce_op(f"allreduce_mlp_L{layer}", layer, ar_bytes))
    return ops


def decode_step_ops(
    model: ModelSpec,
    batch: int,
    context: int,
    tp: int,
    *,
    layers: Optional[Sequence[int]] = None,
    include_lm_head: bool = True,
) -> List[OpDesc]:
    """A full single-token decode step (the paper's §4.3 workload unit).

    The paper evaluates "one iteration of the sampling phase constantly with
    a sequence length of 16 as the starting point and a batch size of 32" —
    i.e. repeated decode steps at a fixed small context.
    """
    _validate(model, batch, context, tp)
    layer_ids = list(layers) if layers is not None else list(range(model.num_layers))
    if not layer_ids:
        raise ConfigError("decode_step_ops: empty layer subset")
    ops: List[OpDesc] = []
    for lid in layer_ids:
        ops += decode_layer_ops(model, batch, context, tp, lid)
    if include_lm_head and layer_ids[-1] == model.num_layers - 1:
        ops += lm_head_ops(model, batch, tp)
    return ops


def _validate(model: ModelSpec, batch: int, context: int, tp: int) -> None:
    if batch < 1:
        raise ConfigError(f"batch must be >= 1, got {batch}")
    if context < 1:
        raise ConfigError(f"context must be >= 1, got {context}")
    model.validate_tp(tp)
