"""Mixture-of-experts layers as per-device operator sequences.

A MoE transformer layer keeps the Megatron attention block (tensor-parallel
QKV / attention / output projection + all-reduce) but replaces the dense FFN
with a routed expert bank.  Under **expert parallelism** of degree ``ep``
(= the tensor-parallel degree here, the common TP+EP hybrid) each device
hosts ``num_experts / ep`` experts and the layer exchanges tokens twice:

====================== ============================= ======================
op                     shape per device              notes
====================== ============================= ======================
post layernorm         m × h                         replicated
router projection      (m, h, E)                     replicated gated GEMM
**all-to-all dispatch** m·k/ep · h · 2 bytes         tokens → expert homes
expert FFN up + GeLU   (cap, h, F·h) × E/ep          per local expert
expert FFN down        (cap, F·h, h) × E/ep          per local expert
**all-to-all combine**  m·k/ep · h · 2 bytes         outputs → token homes
====================== ============================= ======================

with ``m = batch × seq``, ``E = num_experts``, ``k = top_k`` and
``cap = ⌈m·k/E⌉`` the per-expert token capacity under a balanced router.
With ``ep == 1`` every expert is local: no exchanges, just the routed
expert GEMMs — the no-overlap baseline the MoE example compares against.

The communication-characterization literature identifies exactly these
all-to-alls as the dominant cross-GPU pattern in MoE inference; the
``expert_overlap`` scheduling policy (:mod:`repro.core.policy`) exists to
hide them behind other batches' expert GEMMs.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import ConfigError, PartitionError
from repro.models.ops import (
    OpDesc,
    all_to_all_op,
    allreduce_op,
    attention_op,
    elementwise_op,
    gemm_op,
)
from repro.models.specs import ModelSpec
from repro.units import FP16_BYTES

__all__ = ["moe_ffn_ops", "moe_layer_ops", "expert_capacity"]


def expert_capacity(tokens: int, num_experts: int, top_k: int) -> int:
    """Per-expert token capacity under a balanced top-k router."""
    return max(1, math.ceil(tokens * top_k / num_experts))


def validate_ep(model: ModelSpec, ep: int) -> None:
    """Check the expert bank shards evenly over ``ep`` devices."""
    if not model.is_moe:
        raise ConfigError(f"{model.name}: not a MoE model (num_experts=0)")
    if ep < 1:
        raise PartitionError(f"ep must be >= 1, got {ep}")
    if model.num_experts % ep != 0:
        raise PartitionError(
            f"{model.name}: {model.num_experts} experts not divisible by ep={ep}"
        )


def moe_ffn_ops(
    model: ModelSpec,
    tokens: int,
    ep: int,
    layer: int,
) -> List[OpDesc]:
    """The routed-FFN half of a MoE layer for ``tokens`` tokens on one device.

    Emits post-layernorm, the router projection, the expert-parallel
    dispatch/combine all-to-alls (``ep > 1`` only), and one gated FFN GEMM
    pair per *local* expert at balanced capacity.
    """
    validate_ep(model, ep)
    h = model.hidden_size
    experts = model.num_experts
    local_experts = experts // ep
    cap = expert_capacity(tokens, experts, model.top_k)
    ops: List[OpDesc] = [
        elementwise_op(f"ln2_L{layer}", layer, tokens * h),
        gemm_op(
            f"router_gemm_L{layer}", layer, tokens, h, experts,
            decomposable=False,
        ),
    ]
    if ep > 1:
        # Each rank scatters its share of the routed activations: tokens·k
        # expert assignments, h hidden each, spread over ep ranks.
        a2a_bytes = float(tokens * model.top_k * h * FP16_BYTES) / ep
        ops.append(
            all_to_all_op(f"a2a_dispatch_L{layer}", layer, a2a_bytes)
        )
    for e in range(local_experts):
        ops += [
            gemm_op(
                f"expert{e}_gemm1_L{layer}", layer, cap, h, model.ffn_size,
                split_dim="n",
            ),
            gemm_op(
                f"expert{e}_gemm2_L{layer}", layer, cap, model.ffn_size, h,
                split_dim="k",
            ),
        ]
    if ep > 1:
        a2a_bytes = float(tokens * model.top_k * h * FP16_BYTES) / ep
        ops.append(
            all_to_all_op(f"a2a_combine_L{layer}", layer, a2a_bytes)
        )
    return ops


def moe_layer_ops(
    model: ModelSpec,
    batch: int,
    seq: int,
    tp: int,
    layer: int,
) -> List[OpDesc]:
    """One full MoE transformer layer: TP attention block + routed FFN.

    The attention half is the standard Megatron sequence (with its
    all-reduce when ``tp > 1``); the FFN half is :func:`moe_ffn_ops` with
    the expert-parallel degree equal to ``tp`` (the TP+EP hybrid).
    """
    if batch < 1:
        raise ConfigError(f"batch must be >= 1, got {batch}")
    if seq < 1:
        raise ConfigError(f"seq must be >= 1, got {seq}")
    model.validate_tp(tp)
    m = batch * seq
    h = model.hidden_size
    hp = h // tp
    heads_p = model.num_heads // tp
    ops: List[OpDesc] = [
        elementwise_op(f"ln1_L{layer}", layer, m * h),
        gemm_op(f"qkv_gemm_L{layer}", layer, m, h, 3 * hp, split_dim="n"),
        attention_op(
            f"attention_L{layer}",
            layer,
            batch=batch,
            q_len=seq,
            ctx_len=seq,
            heads=heads_p,
            head_dim=model.head_dim,
        ),
        gemm_op(f"attn_out_gemm_L{layer}", layer, m, hp, h, split_dim="k"),
    ]
    if tp > 1:
        ops.append(
            allreduce_op(
                f"allreduce_attn_L{layer}", layer, float(m * h * FP16_BYTES)
            )
        )
    ops += moe_ffn_ops(model, m, tp, layer)
    return ops
