"""Transformer forward passes as per-device operator sequences.

This module encodes the structure every strategy schedules: the fused
inference kernel sequence of a Megatron-style transformer layer.  Under
tensor parallelism of degree ``tp`` each layer is (§4.1, Intra-Op baseline):

====================== ======================= ======================
op                     shape per device        notes
====================== ======================= ======================
input layernorm        m × h                   memory-bound, replicated
QKV projection         (m, h, 3h/tp)           column-parallel GEMM
fused attention        heads/tp heads          local heads only
output projection      (m, h/tp, h)            row-parallel GEMM
**all-reduce**         m·h·2 bytes             1st of 2 per layer
post layernorm         m × h                   replicated
FFN up + GeLU          (m, h, 4h/tp)           column-parallel GEMM
FFN down               (m, 4h/tp, h)           row-parallel GEMM
**all-reduce**         m·h·2 bytes             2nd of 2 per layer
====================== ======================= ======================

where ``m = batch × seq``.  With ``tp == 1`` the same sequence has no
collectives — that is the per-stage kernel sequence of the inter-operator
baseline.  The "two all-reduce synchronizations per transformer layer" is
exactly the Megatron-LM scheme the paper names.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.models.ops import (
    OpDesc,
    allreduce_op,
    attention_op,
    elementwise_op,
    gemm_op,
)
from repro.models.specs import ModelSpec
from repro.sim.kernel import KernelKind
from repro.units import FP16_BYTES

__all__ = ["layer_ops", "prefill_ops", "lm_head_ops", "embed_ops"]


def layer_ops(
    model: ModelSpec,
    batch: int,
    seq: int,
    tp: int,
    layer: int,
) -> List[OpDesc]:
    """The fused kernel sequence of one transformer layer on one device."""
    if model.is_moe:
        # Routed-FFN layers live in repro.models.moe (imported lazily to
        # keep the dense path's import graph unchanged).
        from repro.models.moe import moe_layer_ops

        return moe_layer_ops(model, batch, seq, tp, layer)
    _validate(model, batch, seq, tp)
    m = batch * seq
    h = model.hidden_size
    hp = h // tp
    ffn_p = model.ffn_size // tp
    heads_p = model.num_heads // tp
    ar_bytes = float(m * h * FP16_BYTES)

    ops: List[OpDesc] = [
        elementwise_op(f"ln1_L{layer}", layer, m * h),
        gemm_op(f"qkv_gemm_L{layer}", layer, m, h, 3 * hp, split_dim="n"),
        attention_op(
            f"attention_L{layer}",
            layer,
            batch=batch,
            q_len=seq,
            ctx_len=seq,
            heads=heads_p,
            head_dim=model.head_dim,
        ),
        gemm_op(f"attn_out_gemm_L{layer}", layer, m, hp, h, split_dim="k"),
    ]
    if tp > 1:
        ops.append(allreduce_op(f"allreduce_attn_L{layer}", layer, ar_bytes))
    ops += [
        elementwise_op(f"ln2_L{layer}", layer, m * h),
        gemm_op(f"mlp_gemm1_L{layer}", layer, m, h, ffn_p, split_dim="n"),
        gemm_op(f"mlp_gemm2_L{layer}", layer, m, ffn_p, h, split_dim="k"),
    ]
    if tp > 1:
        ops.append(allreduce_op(f"allreduce_mlp_L{layer}", layer, ar_bytes))
    return ops


def embed_ops(model: ModelSpec, batch: int, seq: int) -> List[OpDesc]:
    """Token + position embedding gather (replicated; memory-bound)."""
    m = batch * seq
    return [
        OpDesc(
            name="embed",
            op="embed",
            kind=KernelKind.COMPUTE,
            layer=-1,
            elems=float(m * model.hidden_size),
            rw_factor=2.0,
        )
    ]


def lm_head_ops(model: ModelSpec, batch: int, tp: int) -> List[OpDesc]:
    """Final layernorm + LM-head projection for the *last* token per request.

    Serving systems compute logits only for the sampled position, so the LM
    head GEMM has ``m = batch`` rows.  Under tensor parallelism the vocab
    dimension is column-split and a small collective gathers the shards.
    """
    h = model.hidden_size
    ops: List[OpDesc] = [
        elementwise_op("final_ln", -1, batch * h),
        gemm_op("lm_head_gemm", -1, max(1, batch), h, model.vocab_size // tp, split_dim="n"),
    ]
    if tp > 1:
        ops.append(
            allreduce_op(
                "allreduce_logits",
                -1,
                float(batch * (model.vocab_size // tp) * FP16_BYTES),
                decomposable=False,
            )
        )
    return ops


def prefill_ops(
    model: ModelSpec,
    batch: int,
    seq: int,
    tp: int,
    *,
    layers: Optional[Sequence[int]] = None,
    include_embed: bool = True,
    include_lm_head: bool = True,
) -> List[OpDesc]:
    """A full prefill (initial conditioning phase, §4.3) forward pass.

    ``layers`` restricts to a contiguous subset (pipeline stages use this);
    embedding / LM head are included only when the subset touches the first /
    last layer respectively.
    """
    _validate(model, batch, seq, tp)
    layer_ids = list(layers) if layers is not None else list(range(model.num_layers))
    if not layer_ids:
        raise ConfigError("prefill_ops: empty layer subset")
    ops: List[OpDesc] = []
    if include_embed and layer_ids[0] == 0:
        ops += embed_ops(model, batch, seq)
    for lid in layer_ids:
        ops += layer_ops(model, batch, seq, tp, lid)
    if include_lm_head and layer_ids[-1] == model.num_layers - 1:
        ops += lm_head_ops(model, batch, tp)
    return ops


def _validate(model: ModelSpec, batch: int, seq: int, tp: int) -> None:
    if batch < 1:
        raise ConfigError(f"batch must be >= 1, got {batch}")
    if seq < 1:
        raise ConfigError(f"seq must be >= 1, got {seq}")
    model.validate_tp(tp)
