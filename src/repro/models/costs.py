"""Analytical kernel cost model (the FasterTransformer-kernel substitute).

Durations come from a roofline with empirical efficiency curves:

``t = max(flops / (peak_fp16 · eff), bytes / hbm_bandwidth) + overhead``

The efficiency of a GEMM is the product of three effects every tuned GPU GEMM
library exhibits:

* a *base* efficiency (``base_efficiency``): achievable fraction of the
  tensor-core peak on large, well-shaped FP16 GEMMs (≈0.6–0.75 in practice);
* a *row-saturation* curve ``m / (m + m_half)``: skinny activations (small
  batch×seq) under-fill tiles — this is why the paper's Fig. 9 finds
  *horizontal* GEMM decomposition (splitting the already-skinny activation
  matrix) catastrophic while *vertical* (splitting the weight) is cheap;
* a *tile-quantisation* curve ``kn / (kn + tile_half)``: small weight panels
  waste launch/epilogue work — this is the gentle cost vertical
  decomposition does pay, and why a division factor of 16 stops helping
  (Fig. 14);
* a *giant-panel rolloff*: beyond ``tile_rolloff_threshold`` (k·n elements)
  efficiency dips mildly — very large weight panels suffer cache/TLB
  pressure in real GEMM libraries.  This reproduces the paper's Fig. 10(j)(k)
  anomaly, where the *sum of four partitioned kernels* is shorter than the
  single whole kernel ("related to the GEMM implementation"), making
  Inter-Th out-throughput Inter-Op on the largest models.

The fixed per-kernel ``overhead`` term (scheduling + tail effects on the
device, *not* the host launch cost — that is modelled by
:class:`repro.sim.host.Host`) is what makes many tiny kernels slower than one
big one, the other half of the decomposition trade-off.

These curves are phenomenological; DESIGN.md documents why that is the right
substitution level (the figures depend on ratios and shapes, not on matching
the authors' absolute microseconds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.devices import GpuSpec
from repro.models.ops import OpDesc
from repro.units import FP16_BYTES, us

__all__ = ["KernelCostModel", "CostBreakdown"]


@dataclass(frozen=True)
class CostBreakdown:
    """Duration decomposition for one op (diagnostics / tests)."""

    compute_us: float
    memory_us: float
    overhead_us: float

    @property
    def total(self) -> float:
        return max(self.compute_us, self.memory_us) + self.overhead_us

    @property
    def bound(self) -> str:
        return "compute" if self.compute_us >= self.memory_us else "memory"


class KernelCostModel:
    """Maps :class:`OpDesc` to duration (µs) and resource footprints.

    Parameters
    ----------
    gpu:
        Device the kernels run on.
    base_efficiency:
        Peak fraction achievable by large GEMMs (see module docstring).
    m_half:
        Row count at which the row-saturation curve reaches 1/2.
    tile_half:
        ``k·n`` product at which the tile-quantisation curve reaches 1/2.
    kernel_overhead:
        Fixed device-side per-kernel cost (µs).
    attention_efficiency:
        Peak fraction for fused attention (lower than GEMM: softmax,
        masking, and irregular shapes).
    """

    def __init__(
        self,
        gpu: GpuSpec,
        *,
        base_efficiency: float = 0.72,
        m_half: int = 24,
        tile_half: float = 1.5e6,
        kernel_overhead: float = us(3.0),
        attention_efficiency: float = 0.35,
        tile_rolloff_threshold: float = 2.5e8,
        tile_rolloff_strength: float = 0.15,
    ) -> None:
        if not 0 < base_efficiency <= 1:
            raise ConfigError("base_efficiency must be in (0, 1]")
        if m_half < 1 or tile_half <= 0:
            raise ConfigError("m_half/tile_half must be positive")
        if kernel_overhead < 0:
            raise ConfigError("kernel_overhead must be >= 0")
        if tile_rolloff_threshold <= 0 or tile_rolloff_strength < 0:
            raise ConfigError("tile rolloff parameters must be positive")
        self.gpu = gpu
        self.base_efficiency = base_efficiency
        self.m_half = m_half
        self.tile_half = tile_half
        self.kernel_overhead = kernel_overhead
        self.attention_efficiency = attention_efficiency
        self.tile_rolloff_threshold = tile_rolloff_threshold
        self.tile_rolloff_strength = tile_rolloff_strength

    # ------------------------------------------------------------------
    # GEMM
    # ------------------------------------------------------------------
    def gemm_efficiency(self, m: int, k: int, n: int) -> float:
        """Achieved fraction of FP16 peak for an ``[m,k]@[k,n]`` GEMM."""
        row = m / (m + self.m_half)
        kn = float(k) * float(n)
        tile = kn / (kn + self.tile_half)
        rolloff = 1.0
        if kn > self.tile_rolloff_threshold:
            excess = (kn - self.tile_rolloff_threshold) / self.tile_rolloff_threshold
            rolloff = 1.0 / (1.0 + self.tile_rolloff_strength * excess)
        return self.base_efficiency * row * tile * rolloff

    def gemm_breakdown(self, m: int, k: int, n: int) -> CostBreakdown:
        """Compute/memory/overhead decomposition of a GEMM's duration."""
        flops = 2.0 * m * k * n
        bytes_moved = FP16_BYTES * (m * k + k * n + m * n)
        eff = self.gemm_efficiency(m, k, n)
        return CostBreakdown(
            compute_us=flops / (self.gpu.fp16_flops * eff) * 1e6,
            memory_us=bytes_moved / self.gpu.memory_bandwidth * 1e6,
            overhead_us=self.kernel_overhead,
        )

    def gemm_time(self, m: int, k: int, n: int) -> float:
        """GEMM duration in µs."""
        return self.gemm_breakdown(m, k, n).total

    # ------------------------------------------------------------------
    # Attention
    # ------------------------------------------------------------------
    def attention_breakdown(
        self, batch: int, q_len: int, ctx_len: int, heads: int, head_dim: int
    ) -> CostBreakdown:
        """Compute/memory/overhead decomposition of fused attention."""
        # QK^T and AV: 2 matmuls of (q_len × ctx_len × head_dim) per head.
        flops = 2.0 * 2.0 * batch * heads * q_len * ctx_len * head_dim
        # Streams Q, K, V, scores, and output; the KV read dominates during
        # incremental decoding (q_len = 1, ctx_len large).
        kv_bytes = 2.0 * batch * ctx_len * heads * head_dim * FP16_BYTES
        q_out_bytes = 2.0 * batch * q_len * heads * head_dim * FP16_BYTES
        score_bytes = batch * heads * q_len * ctx_len * FP16_BYTES
        return CostBreakdown(
            compute_us=flops
            / (self.gpu.fp16_flops * self.attention_efficiency)
            * 1e6,
            memory_us=(kv_bytes + q_out_bytes + score_bytes)
            / self.gpu.memory_bandwidth
            * 1e6,
            overhead_us=self.kernel_overhead,
        )

    # ------------------------------------------------------------------
    # Memory-bound ops
    # ------------------------------------------------------------------
    def elementwise_time(self, elems: float, rw_factor: float = 3.0) -> float:
        """Fused elementwise kernel duration (µs)."""
        bytes_moved = elems * FP16_BYTES * rw_factor
        return bytes_moved / self.gpu.memory_bandwidth * 1e6 + self.kernel_overhead

    # ------------------------------------------------------------------
    # OpDesc dispatch
    # ------------------------------------------------------------------
    def duration(self, op: OpDesc) -> float:
        """Duration (µs) of a non-collective op.

        Collectives are priced by :class:`repro.sim.interconnect.CollectiveCostModel`
        (they depend on the topology, not the device); asking here is an error.
        """
        if op.op == "gemm":
            assert op.gemm_shape is not None
            return self.gemm_time(*op.gemm_shape)
        if op.op == "attention":
            return self.attention_breakdown(
                op.attn_batch, op.attn_q_len, op.attn_ctx_len,
                op.attn_heads, op.attn_head_dim,
            ).total
        if op.op in ("elementwise", "embed", "kv_append"):
            return self.elementwise_time(op.elems, op.rw_factor)
        raise ConfigError(f"cost model cannot price collective op {op.name!r}")

    def occupancy(self, op: OpDesc) -> float:
        """SM footprint while resident (for the left-over policy)."""
        if op.op == "gemm":
            assert op.gemm_shape is not None
            m = op.gemm_shape[0]
            # Tiny GEMMs (decode-phase) don't fill the device.
            return 0.92 if m >= 64 else 0.55 + 0.37 * (m / 64.0)
        if op.op == "attention":
            return 0.8
        if op.op in ("elementwise", "embed", "kv_append"):
            return 0.35
        raise ConfigError(f"occupancy undefined for collective op {op.name!r}")

    def memory_intensity(self, op: OpDesc) -> float:
        """Fraction of HBM bandwidth consumed while running."""
        if op.op == "gemm":
            bd = self.gemm_breakdown(*op.gemm_shape)  # type: ignore[misc]
            return min(0.95, max(0.15, bd.memory_us / max(bd.total, 1e-9)))
        if op.op == "attention":
            return 0.6
        if op.op in ("elementwise", "embed", "kv_append"):
            return 0.9
        raise ConfigError(f"memory_intensity undefined for collective {op.name!r}")
