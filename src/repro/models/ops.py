"""Device-level operator descriptors.

An :class:`OpDesc` is one operator of a forward pass *as seen by one device*
after parallelisation — the unit that Liger's function assembly wraps (§3.2)
and that Algorithm 1 schedules.  It is declarative: shapes and byte counts
only.  The cost model (:mod:`repro.models.costs`) turns an OpDesc into a
duration/footprint, and the assembly layer turns it into simulator kernels.

Ops come in a handful of flavours, selected by ``op``:

* ``"gemm"`` — dense matmul ``(m, k, n)``; the decomposable workhorse.
* ``"attention"`` — fused attention (QKᵀ, softmax, AV) over a KV context.
* ``"elementwise"`` — layernorm / residual / activation fused kernels.
* ``"embed"`` — embedding gather.
* ``"kv_append"`` — KV-cache append during generative decoding.
* ``"all_reduce"`` / ``"all_to_all"`` / ``"p2p"`` — collectives;
  ``comm_bytes`` is the payload (per-rank for all-to-all).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.sim.kernel import KernelKind

__all__ = [
    "OpDesc",
    "gemm_op",
    "attention_op",
    "elementwise_op",
    "allreduce_op",
    "all_to_all_op",
    "p2p_op",
]


@dataclass(frozen=True)
class OpDesc:
    """One per-device operator in a forward pass.

    Only the fields relevant to ``op`` are set; the rest stay at their
    defaults.  ``layer`` is −1 for pre/post-model ops (embedding, LM head).
    """

    name: str
    op: str
    kind: KernelKind
    layer: int = -1
    # gemm
    gemm_shape: Optional[Tuple[int, int, int]] = None
    # attention
    attn_batch: int = 0
    attn_q_len: int = 0
    attn_ctx_len: int = 0
    attn_heads: int = 0
    attn_head_dim: int = 0
    # elementwise / embed / kv_append
    elems: float = 0.0
    rw_factor: float = 3.0
    # collectives
    comm_bytes: float = 0.0
    p2p_src: int = -1
    p2p_dst: int = -1
    # scheduling hints
    decomposable: bool = False
    # How Megatron tensor-parallelism splits this op: "n" (column-parallel
    # weight), "k" (row-parallel weight), "heads" (attention), "" (replicated).
    # Inter-Th pricing and the vertical/horizontal decomposition strategies
    # (§3.6) both key off this.
    split_dim: str = ""

    def __post_init__(self) -> None:
        if self.op == "gemm":
            if self.gemm_shape is None or any(d < 1 for d in self.gemm_shape):
                raise ConfigError(f"{self.name}: gemm needs a positive (m,k,n) shape")
        elif self.op == "attention":
            if min(
                self.attn_batch, self.attn_q_len, self.attn_ctx_len,
                self.attn_heads, self.attn_head_dim,
            ) < 1:
                raise ConfigError(f"{self.name}: attention dims must be positive")
        elif self.op in ("elementwise", "embed", "kv_append"):
            if self.elems <= 0:
                raise ConfigError(f"{self.name}: {self.op} needs positive elems")
        elif self.op in ("all_reduce", "all_to_all", "p2p"):
            if self.kind is not KernelKind.COMM:
                raise ConfigError(f"{self.name}: collectives must be COMM kind")
            if self.comm_bytes < 0:
                raise ConfigError(f"{self.name}: negative comm_bytes")
            if self.op == "p2p" and (self.p2p_src < 0 or self.p2p_dst < 0):
                raise ConfigError(f"{self.name}: p2p needs src and dst")
        else:
            raise ConfigError(f"{self.name}: unknown op flavour {self.op!r}")

    @property
    def is_comm(self) -> bool:
        return self.kind is KernelKind.COMM

    def with_gemm_shape(self, m: int, k: int, n: int) -> "OpDesc":
        """A copy with a different GEMM shape (used by decomposition)."""
        return replace(self, gemm_shape=(m, k, n))

    def with_comm_bytes(self, comm_bytes: float) -> "OpDesc":
        """A copy with a different collective payload (used by decomposition)."""
        return replace(self, comm_bytes=comm_bytes)


# ----------------------------------------------------------------------
# Constructors (keep call sites terse and validated)
# ----------------------------------------------------------------------

def gemm_op(
    name: str,
    layer: int,
    m: int,
    k: int,
    n: int,
    *,
    decomposable: bool = True,
    split_dim: str = "",
) -> OpDesc:
    """A dense matmul op: ``[m,k] @ [k,n]``.

    ``split_dim`` records how Megatron TP shards the weight: ``"n"`` for
    column-parallel (QKV, FFN-up, LM head) and ``"k"`` for row-parallel
    (attention output, FFN-down).
    """
    return OpDesc(
        name=name,
        op="gemm",
        kind=KernelKind.COMPUTE,
        layer=layer,
        gemm_shape=(m, k, n),
        decomposable=decomposable,
        split_dim=split_dim,
    )


def attention_op(
    name: str,
    layer: int,
    *,
    batch: int,
    q_len: int,
    ctx_len: int,
    heads: int,
    head_dim: int,
) -> OpDesc:
    """A fused attention op over ``ctx_len`` cached keys/values per query."""
    return OpDesc(
        name=name,
        op="attention",
        kind=KernelKind.COMPUTE,
        layer=layer,
        attn_batch=batch,
        attn_q_len=q_len,
        attn_ctx_len=ctx_len,
        attn_heads=heads,
        attn_head_dim=head_dim,
        split_dim="heads",
    )


def elementwise_op(name: str, layer: int, elems: float, *, rw_factor: float = 3.0) -> OpDesc:
    """A memory-bound fused elementwise op (layernorm + residual etc.)."""
    return OpDesc(
        name=name,
        op="elementwise",
        kind=KernelKind.COMPUTE,
        layer=layer,
        elems=elems,
        rw_factor=rw_factor,
    )


def allreduce_op(name: str, layer: int, comm_bytes: float, *, decomposable: bool = True) -> OpDesc:
    """A tensor-parallel all-reduce of ``comm_bytes`` per device."""
    return OpDesc(
        name=name,
        op="all_reduce",
        kind=KernelKind.COMM,
        layer=layer,
        comm_bytes=comm_bytes,
        decomposable=decomposable,
    )


def all_to_all_op(
    name: str, layer: int, comm_bytes: float, *, decomposable: bool = True
) -> OpDesc:
    """An expert-parallel all-to-all exchange of ``comm_bytes`` per device.

    MoE layers issue one for token dispatch (routing tokens to the devices
    hosting their selected experts) and one for combine (routing expert
    outputs back); the payload is the per-rank scatter buffer.
    """
    return OpDesc(
        name=name,
        op="all_to_all",
        kind=KernelKind.COMM,
        layer=layer,
        comm_bytes=comm_bytes,
        decomposable=decomposable,
    )


def p2p_op(name: str, layer: int, comm_bytes: float, src: int, dst: int) -> OpDesc:
    """A pipeline-boundary activation transfer."""
    return OpDesc(
        name=name,
        op="p2p",
        kind=KernelKind.COMM,
        layer=layer,
        comm_bytes=comm_bytes,
        p2p_src=src,
        p2p_dst=dst,
    )
