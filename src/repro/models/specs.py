"""Transformer model specifications (the paper's Table 1, plus extras).

The serving targets are decoder-only transformers; a spec records the
architecture numbers the cost model needs (layers, heads, hidden size,
FFN expansion, vocab) and the FP16 weight footprint used for placement
feasibility checks.

Table 1 of the paper:

======== ========== ====== ===== =========== =====
Name     Parameters Layers Heads Hidden Size Prec.
======== ========== ====== ===== =========== =====
OPT-30B  60 GB      48     56    7168        FP16
OPT-66B  132 GB     64     72    9216        FP16
GLM-130B 260 GB     70     96    12288       FP16
======== ========== ====== ===== =========== =====

Fig. 4(a) additionally sweeps models from 8 B to 175 B parameters; we provide
the standard OPT/GPT-3 family configurations for that sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError, PartitionError
from repro.units import FP16_BYTES, GB

__all__ = [
    "ModelSpec",
    "OPT_8B",
    "OPT_13B",
    "OPT_30B",
    "OPT_66B",
    "OPT_175B",
    "GLM_130B",
    "MOE_16E",
    "MODELS",
]


@dataclass(frozen=True)
class ModelSpec:
    """Architecture of a decoder-only transformer.

    Parameters
    ----------
    name:
        Model name as in the paper.
    num_layers / num_heads / hidden_size:
        Standard transformer dimensions (Table 1).
    ffn_multiplier:
        FFN inner size as a multiple of ``hidden_size`` (4 for these models).
    vocab_size:
        Token vocabulary (embedding + LM head shapes).
    weight_bytes:
        FP16 parameter footprint in bytes.  Taken from Table 1 where the
        paper specifies it; otherwise ``2 × approx_params``.
    num_experts:
        Mixture-of-experts width: number of FFN experts per layer.  0 (the
        default) means a dense FFN; MoE specs replace the dense FFN with
        ``num_experts`` expert FFNs plus a router and, under expert
        parallelism, all-to-all dispatch/combine exchanges.
    top_k:
        Experts activated per token (standard top-2 routing by default).
    """

    name: str
    num_layers: int
    num_heads: int
    hidden_size: int
    ffn_multiplier: int = 4
    vocab_size: int = 51200
    weight_bytes: float = 0.0
    num_experts: int = 0
    top_k: int = 2

    def __post_init__(self) -> None:
        if self.num_layers < 1 or self.num_heads < 1 or self.hidden_size < 1:
            raise ConfigError(f"{self.name}: dimensions must be positive")
        if self.hidden_size % self.num_heads != 0:
            raise ConfigError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible "
                f"by num_heads {self.num_heads}"
            )
        if self.num_experts < 0:
            raise ConfigError(f"{self.name}: num_experts must be >= 0")
        if self.num_experts > 0 and not 1 <= self.top_k <= self.num_experts:
            raise ConfigError(
                f"{self.name}: top_k {self.top_k} must be in "
                f"[1, num_experts={self.num_experts}]"
            )
        if self.weight_bytes <= 0:
            object.__setattr__(
                self, "weight_bytes", float(self.approx_params) * FP16_BYTES
            )

    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def ffn_size(self) -> int:
        """FFN inner dimension."""
        return self.hidden_size * self.ffn_multiplier

    @property
    def is_moe(self) -> bool:
        """Whether the FFN block is a mixture of experts."""
        return self.num_experts > 0

    @property
    def approx_params(self) -> int:
        """Approximate parameter count from the architecture.

        Per layer: QKV (3h²) + output projection (h²) + two FFN matmuls
        (2·Fh² with F = ffn_multiplier) = (4 + 2F)h²; plus embeddings
        (vocab·h).  MoE layers replicate the FFN pair per expert and add
        the router projection (E·h).
        """
        attn = 4 * self.hidden_size**2
        ffn_pair = 2 * self.ffn_multiplier * self.hidden_size**2
        if self.is_moe:
            ffn = self.num_experts * ffn_pair + self.num_experts * self.hidden_size
        else:
            ffn = ffn_pair
        embed = self.vocab_size * self.hidden_size
        return self.num_layers * (attn + ffn) + embed

    # ------------------------------------------------------------------
    def validate_tp(self, tp: int) -> None:
        """Check the model can be tensor-parallelised ``tp`` ways."""
        if tp < 1:
            raise PartitionError(f"tp must be >= 1, got {tp}")
        if self.num_heads % tp != 0:
            raise PartitionError(
                f"{self.name}: {self.num_heads} heads not divisible by tp={tp}"
            )
        if self.hidden_size % tp != 0:
            raise PartitionError(
                f"{self.name}: hidden {self.hidden_size} not divisible by tp={tp}"
            )

    def weight_bytes_per_device(self, num_devices: int) -> float:
        """FP16 weights per device when sharded ``num_devices`` ways."""
        if num_devices < 1:
            raise ConfigError("num_devices must be >= 1")
        return self.weight_bytes / num_devices

    def fits_on(self, num_devices: int, device_memory: float, *, headroom: float = 0.8) -> bool:
        """Whether the sharded weights fit in ``device_memory`` per device.

        ``headroom`` reserves space for activations and the KV cache.
        """
        return self.weight_bytes_per_device(num_devices) <= device_memory * headroom

    def kv_cache_bytes(self, batch: int, context: int, *, tp: int = 1) -> float:
        """Per-device FP16 KV-cache footprint for ``batch``×``context`` tokens."""
        # K and V per layer, hidden split across tp.
        return (
            2.0
            * self.num_layers
            * batch
            * context
            * (self.hidden_size / tp)
            * FP16_BYTES
        )

    def scaled_layers(self, num_layers: int) -> "ModelSpec":
        """A copy with a reduced/extended layer count.

        The paper does exactly this for strong-scaling feasibility (§2.2):
        "we reduce the layer number of these models to make them
        accommodatable in less number of devices ... reducing layer number
        will not impact the computational and communication features."
        """
        if num_layers < 1:
            raise ConfigError("num_layers must be >= 1")
        frac = num_layers / self.num_layers
        return ModelSpec(
            name=f"{self.name}-L{num_layers}",
            num_layers=num_layers,
            num_heads=self.num_heads,
            hidden_size=self.hidden_size,
            ffn_multiplier=self.ffn_multiplier,
            vocab_size=self.vocab_size,
            weight_bytes=self.weight_bytes * frac,
            num_experts=self.num_experts,
            top_k=self.top_k,
        )


# ----------------------------------------------------------------------
# Table 1 models
# ----------------------------------------------------------------------

OPT_30B = ModelSpec(
    name="OPT-30B",
    num_layers=48,
    num_heads=56,
    hidden_size=7168,
    weight_bytes=GB(60.0),
)

OPT_66B = ModelSpec(
    name="OPT-66B",
    num_layers=64,
    num_heads=72,
    hidden_size=9216,
    weight_bytes=GB(132.0),
)

GLM_130B = ModelSpec(
    name="GLM-130B",
    num_layers=70,
    num_heads=96,
    hidden_size=12288,
    weight_bytes=GB(260.0),
)

# ----------------------------------------------------------------------
# Fig. 4(a) sweep companions (standard OPT / GPT-3 family configs)
# ----------------------------------------------------------------------

OPT_8B = ModelSpec(name="OPT-8B", num_layers=32, num_heads=32, hidden_size=4096)
OPT_13B = ModelSpec(name="OPT-13B", num_layers=40, num_heads=40, hidden_size=5120)
OPT_175B = ModelSpec(
    name="OPT-175B", num_layers=96, num_heads=96, hidden_size=12288, weight_bytes=GB(350.0)
)

# ----------------------------------------------------------------------
# Mixture-of-experts companion (Mixtral-class 16-expert top-2 config)
# ----------------------------------------------------------------------

MOE_16E = ModelSpec(
    name="MoE-16E",
    num_layers=32,
    num_heads=32,
    hidden_size=4096,
    num_experts=16,
    top_k=2,
)

#: All named models, keyed by name.
MODELS: Dict[str, ModelSpec] = {
    m.name: m
    for m in (OPT_8B, OPT_13B, OPT_30B, OPT_66B, GLM_130B, OPT_175B, MOE_16E)
}
