"""Model partitioning: pipeline stages and placement feasibility.

Tensor-parallel (intra-operator) partitioning is expressed directly in the
per-device shapes of :mod:`repro.models.transformer`; this module adds what
the *inter-operator* baseline needs — equal contiguous stage ranges with
point-to-point activation transfers at stage boundaries (§4.1, Inter-Op) —
and the memory-placement checks that decide which models fit which testbeds
(the paper runs OPT-30B on the 4×16 GB V100 node and all models on the
4×80 GB A100 node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError, PartitionError
from repro.hw.devices import NodeSpec
from repro.models.specs import ModelSpec
from repro.units import FP16_BYTES

__all__ = ["PipelineStage", "pipeline_stages", "boundary_bytes", "check_placement"]


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage: a contiguous block of layers on one device."""

    index: int
    device: int
    layers: range

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def is_first(self) -> bool:
        return self.index == 0


def pipeline_stages(model: ModelSpec, num_stages: int) -> List[PipelineStage]:
    """Split the model into equal contiguous stages (Inter-Op baseline).

    When layers don't divide evenly the earlier stages take the extra layer
    (GPipe's convention); stage *i* lives on device *i*.
    """
    if num_stages < 1:
        raise PartitionError(f"num_stages must be >= 1, got {num_stages}")
    if num_stages > model.num_layers:
        raise PartitionError(
            f"cannot split {model.num_layers} layers into {num_stages} stages"
        )
    base = model.num_layers // num_stages
    extra = model.num_layers % num_stages
    stages: List[PipelineStage] = []
    start = 0
    for i in range(num_stages):
        count = base + (1 if i < extra else 0)
        stages.append(PipelineStage(index=i, device=i, layers=range(start, start + count)))
        start += count
    assert start == model.num_layers
    return stages


def boundary_bytes(model: ModelSpec, batch: int, seq: int) -> float:
    """Activation payload crossing a pipeline-stage boundary (bytes)."""
    if batch < 1 or seq < 1:
        raise ConfigError("batch and seq must be >= 1")
    return float(batch * seq * model.hidden_size * FP16_BYTES)


def check_placement(
    model: ModelSpec,
    node: NodeSpec,
    *,
    sharded: bool = True,
    headroom: float = 0.95,
) -> None:
    """Raise :class:`PartitionError` if the model cannot be placed.

    ``sharded=True`` assumes weights are split across all devices (both
    intra-op and inter-op do this); ``sharded=False`` requires a full replica
    per device.  ``headroom`` is deliberately tight (0.95): the paper serves
    OPT-30B (60 GB) on 4×16 GB V100s, i.e. 15 GB of weights in 16 GB devices.
    """
    devices = node.num_gpus if sharded else 1
    if not model.fits_on(devices, node.gpu.memory_capacity, headroom=headroom):
        per_dev = model.weight_bytes_per_device(devices) / 1e9
        cap = node.gpu.memory_capacity * headroom / 1e9
        raise PartitionError(
            f"{model.name} needs {per_dev:.1f} GB/device on {node.name} "
            f"but only {cap:.1f} GB usable per device is available"
        )
