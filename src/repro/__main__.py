"""Serving CLI.

Usage::

    python -m repro --model OPT-30B --node v100 --strategy liger \\
        --rate 50 --requests 64 --batch 2
    python -m repro --model GLM-130B --node a100 --strategy intra \\
        --workload generative --rate 800 --requests 256 --batch 32
    python -m repro --strategy liger --rate 55 --gantt   # ASCII timeline
    python -m repro faults --straggler 1:4.0:0:400       # fault injection
    python -m repro trace --out t.json --metrics-out m.prom  # observability
    python -m repro perf --scale smoke                   # perf harness
    python -m repro chaos --replicas 3 --crashes 1       # cluster chaos
    python -m repro telemetry --report --alerts          # series + SLO burn

For figure regeneration use ``python -m repro.experiments``; for fault
injection and recovery see ``python -m repro faults --help``; for the
merged Perfetto timeline see ``python -m repro trace --help``; for
replicated-cluster chaos testing see ``python -m repro chaos --help``;
for windowed time-series, SLO burn-rate alerts, and the critical-path
report see ``python -m repro telemetry --help``.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import (
    install_log_handler,
    overload_config_from_args,
    overload_parent,
    resolve_model_node,
    workload_parent,
)
from repro.serving.api import serve
from repro.serving.session import ServingConfig


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "faults":
        from repro.faults.cli import main as faults_main

        return faults_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "perf":
        from repro.perf.cli import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.cluster.cli import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "telemetry":
        from repro.obs.telemetry_cli import main as telemetry_main

        return telemetry_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Serve a large language model on a simulated multi-GPU node.",
        parents=[workload_parent(), overload_parent(kv_frac=True)],
    )
    parser.add_argument("--gantt", action="store_true",
                        help="print an ASCII timeline of GPU 0")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="write a Chrome trace JSON of the run")
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--trace-out", metavar="PATH",
        help="write the merged Perfetto timeline (request spans + kernel "
        "slices + control instants) to PATH")
    obs_group.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the run's Prometheus text exposition to PATH")
    obs_group.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="emit repro.* logs at LEVEL (e.g. INFO, WARNING) to stderr")
    args = parser.parse_args(argv)

    install_log_handler(args.log_level, parser)

    model, node = resolve_model_node(args)
    want_trace = args.gantt or args.chrome_trace is not None or args.trace_out is not None
    observability = None
    if args.trace_out is not None or args.metrics_out is not None:
        from repro.obs import Observability

        observability = Observability()
    result = serve(
        model,
        node,
        strategy=args.strategy,
        workload=args.workload,
        policy=args.policy,
        arrival_rate=args.rate,
        num_requests=args.requests,
        batch_size=args.batch,
        seed=args.seed,
        config=ServingConfig(
            record_trace=want_trace,
            overload=overload_config_from_args(args),
            observability=observability,
        ),
    )
    print(result.summary())
    if result.overload is not None:
        print(result.overload.describe())
    stats = result.latency_stats()
    print(
        f"latency ms: mean={stats.mean:.1f} p50={stats.p50:.1f} "
        f"p95={stats.p95:.1f} p99={stats.p99:.1f} max={stats.max:.1f}"
    )
    if args.gantt:
        from repro.sim.gantt import render_gantt

        print()
        print(render_gantt(result.trace, gpus=[0], width=100))
    if args.chrome_trace:
        result.trace.save_chrome_trace(args.chrome_trace)
        print(f"chrome trace written to {args.chrome_trace}")
    if args.trace_out:
        counts = observability.save_merged_trace(args.trace_out, trace=result.trace)
        print(
            f"merged trace written to {args.trace_out}: "
            f"{counts['kernel']} kernel slice(s), {counts['span']} request "
            f"span segment(s), {counts['instant']} control instant(s)"
        )
    if args.metrics_out:
        observability.save_prometheus(args.metrics_out)
        print(f"prometheus metrics written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
