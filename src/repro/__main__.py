"""Serving CLI.

Usage::

    python -m repro --model OPT-30B --node v100 --strategy liger \\
        --rate 50 --requests 64 --batch 2
    python -m repro --model GLM-130B --node a100 --strategy intra \\
        --workload generative --rate 800 --requests 256 --batch 32
    python -m repro --strategy liger --rate 55 --gantt   # ASCII timeline
    python -m repro faults --straggler 1:4.0:0:400       # fault injection
    python -m repro trace --out t.json --metrics-out m.prom  # observability

For figure regeneration use ``python -m repro.experiments``; for fault
injection and recovery see ``python -m repro faults --help``; for the
merged Perfetto timeline see ``python -m repro trace --help``.
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro.hw.devices import TESTBEDS
from repro.models.specs import MODELS
from repro.serving.api import STRATEGIES, serve


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "faults":
        from repro.faults.cli import main as faults_main

        return faults_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Serve a large language model on a simulated multi-GPU node.",
    )
    parser.add_argument("--model", default="OPT-30B", choices=sorted(MODELS))
    parser.add_argument("--node", default="v100", choices=sorted(TESTBEDS))
    parser.add_argument("--gpus", type=int, default=4)
    parser.add_argument("--strategy", default="liger", choices=STRATEGIES)
    parser.add_argument("--workload", default="general",
                        choices=("general", "generative"))
    parser.add_argument("--rate", type=float, default=20.0,
                        help="arrival rate (requests/second)")
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--gantt", action="store_true",
                        help="print an ASCII timeline of GPU 0")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="write a Chrome trace JSON of the run")
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--trace-out", metavar="PATH",
        help="write the merged Perfetto timeline (request spans + kernel "
        "slices + control instants) to PATH")
    obs_group.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the run's Prometheus text exposition to PATH")
    obs_group.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="emit repro.* logs at LEVEL (e.g. INFO, WARNING) to stderr")
    overload_group = parser.add_argument_group("overload protection")
    overload_group.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="enable admission control with a pending queue of N requests")
    overload_group.add_argument(
        "--admission", default="reject",
        choices=("reject", "shed-oldest", "shed-by-deadline"),
        help="policy when the pending queue is full (with --max-pending)")
    overload_group.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline in milliseconds after arrival")
    overload_group.add_argument(
        "--kv-frac", type=float, default=0.9, metavar="F",
        help="fraction of free HBM the KV accountant may use (default 0.9)")
    args = parser.parse_args(argv)

    if args.log_level is not None:
        level = getattr(logging, args.log_level.upper(), None)
        if not isinstance(level, int):
            parser.error(f"unknown log level {args.log_level!r}")
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(name)s %(levelname)s %(message)s"))
        repro_logger = logging.getLogger("repro")
        repro_logger.addHandler(handler)
        repro_logger.setLevel(level)

    model = MODELS[args.model]
    node = TESTBEDS[args.node](args.gpus)
    want_trace = args.gantt or args.chrome_trace is not None or args.trace_out is not None
    observability = None
    if args.trace_out is not None or args.metrics_out is not None:
        from repro.obs import Observability

        observability = Observability()
    overload = None
    if args.max_pending is not None or args.deadline_ms is not None:
        from repro.serving.overload import OverloadConfig

        overload = OverloadConfig(
            max_pending_requests=(
                args.max_pending if args.max_pending is not None else 64
            ),
            policy=args.admission,
            default_deadline_us=(
                args.deadline_ms * 1000.0
                if args.deadline_ms is not None else None
            ),
            kv_capacity_frac=args.kv_frac,
        )
    result = serve(
        model,
        node,
        strategy=args.strategy,
        workload=args.workload,
        arrival_rate=args.rate,
        num_requests=args.requests,
        batch_size=args.batch,
        seed=args.seed,
        record_trace=want_trace,
        overload=overload,
        resilience=None,
        observability=observability,
    )
    print(result.summary())
    if result.overload is not None:
        print(result.overload.describe())
    stats = result.latency_stats()
    print(
        f"latency ms: mean={stats.mean:.1f} p50={stats.p50:.1f} "
        f"p95={stats.p95:.1f} p99={stats.p99:.1f} max={stats.max:.1f}"
    )
    if args.gantt:
        from repro.sim.gantt import render_gantt

        print()
        print(render_gantt(result.trace, gpus=[0], width=100))
    if args.chrome_trace:
        result.trace.save_chrome_trace(args.chrome_trace)
        print(f"chrome trace written to {args.chrome_trace}")
    if args.trace_out:
        counts = observability.save_merged_trace(args.trace_out, trace=result.trace)
        print(
            f"merged trace written to {args.trace_out}: "
            f"{counts['kernel']} kernel slice(s), {counts['span']} request "
            f"span segment(s), {counts['instant']} control instant(s)"
        )
    if args.metrics_out:
        observability.save_prometheus(args.metrics_out)
        print(f"prometheus metrics written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
