"""Hardware descriptions: GPU device specs, node testbeds, and topologies.

This subpackage is pure data + geometry.  The behavioural model of the
hardware (streams, contention, collectives) lives in :mod:`repro.sim`; here we
only describe *what* the hardware is, mirroring the paper's two testbeds:

* a 4× NVIDIA V100 (16 GB) node with NVLink (peak all-reduce bus bandwidth
  32.75 GB/s per the paper's NCCL-tests), and
* a 4× NVIDIA A100 (80 GB) node communicating over a PCIe switch (peak
  all-reduce bus bandwidth 14.88 GB/s).
"""

from repro.hw.devices import (
    GpuSpec,
    NodeSpec,
    V100_16GB,
    A100_80GB_PCIE,
    v100_nvlink_node,
    a100_pcie_node,
    TESTBEDS,
)
from repro.hw.topology import (
    InterconnectKind,
    Topology,
    nvlink_mesh,
    pcie_switch,
)

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "V100_16GB",
    "A100_80GB_PCIE",
    "v100_nvlink_node",
    "a100_pcie_node",
    "TESTBEDS",
    "InterconnectKind",
    "Topology",
    "nvlink_mesh",
    "pcie_switch",
]
