"""GPU device and node specifications.

These dataclasses describe the paper's two testbeds (§4.1) in the numbers the
cost model and simulator consume.  Peak figures are public datasheet values;
the *achievable* fractions are folded into the cost model's efficiency curves
(:mod:`repro.models.costs`), not here, so a device spec stays a statement of
hardware fact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict

from repro.errors import ConfigError
from repro.hw.topology import Topology, nvlink_mesh, pcie_switch
from repro.units import GB, GBps, TFLOPS, us

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "V100_16GB",
    "A100_80GB_PCIE",
    "v100_nvlink_node",
    "a100_pcie_node",
    "TESTBEDS",
]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU.

    Parameters
    ----------
    name:
        Marketing name, e.g. ``"V100-16GB"``.
    fp16_flops:
        Peak FP16 tensor-core throughput (FLOPs/s).
    memory_bandwidth:
        Peak HBM bandwidth (bytes/s).
    memory_capacity:
        HBM capacity (bytes); used for model-placement feasibility checks.
    num_sms:
        Streaming multiprocessor count — the resource pool that the left-over
        scheduling policy allocates (kernels occupy a fraction of it).
    kernel_launch_overhead:
        CPU-side cost (µs) to launch one kernel, ~5 µs in the paper's null
        kernel profiling (§4.5).
    """

    name: str
    fp16_flops: float
    memory_bandwidth: float
    memory_capacity: float
    num_sms: int
    kernel_launch_overhead: float = us(5.0)

    def __post_init__(self) -> None:
        if self.fp16_flops <= 0 or self.memory_bandwidth <= 0:
            raise ConfigError(f"{self.name}: peak rates must be positive")
        if self.memory_capacity <= 0 or self.num_sms <= 0:
            raise ConfigError(f"{self.name}: capacity/SM count must be positive")
        if self.kernel_launch_overhead < 0:
            raise ConfigError(f"{self.name}: launch overhead must be >= 0")


@dataclass(frozen=True)
class NodeSpec:
    """A multi-GPU node: homogeneous GPUs plus an interconnect topology.

    The paper targets single-node multi-GPU systems exclusively (§1), so a
    node is the whole deployment unit.
    """

    name: str
    gpu: GpuSpec
    topology: Topology
    # Extra CPU-side delay (µs) incurred when the host must coordinate a
    # launch across *all* GPUs synchronously (CPU-GPU sync path).  The paper
    # measures the multi-GPU launch delay at >20 µs vs ~5 µs for one GPU
    # (§4.5) and attributes the gap to inconsistent launch times + PCIe
    # contention; this term models that gap.
    multi_gpu_launch_penalty: float = us(15.0)

    def __post_init__(self) -> None:
        if self.multi_gpu_launch_penalty < 0:
            raise ConfigError("multi_gpu_launch_penalty must be >= 0")

    @property
    def num_gpus(self) -> int:
        """Number of GPUs on the node."""
        return self.topology.num_gpus

    @property
    def total_memory(self) -> float:
        """Aggregate HBM capacity across the node (bytes)."""
        return self.gpu.memory_capacity * self.num_gpus

    def with_gpus(self, num_gpus: int) -> "NodeSpec":
        """A copy of this node restricted/extended to ``num_gpus`` GPUs.

        Used by the strong-scaling experiments (Fig. 3, Fig. 12) which vary
        the device count while keeping the device and interconnect flavour.
        """
        if num_gpus < 1:
            raise ConfigError(f"num_gpus must be >= 1, got {num_gpus}")
        topo = _rebuild_topology(self.topology, num_gpus)
        return replace(self, name=f"{self.name}-x{num_gpus}", topology=topo)


def _rebuild_topology(topology: Topology, num_gpus: int) -> Topology:
    """Rebuild a known topology shape with a different GPU count."""
    from repro.hw.topology import InterconnectKind

    if topology.kind is InterconnectKind.NVLINK:
        sample = topology.graph.edges[0, 1] if topology.num_gpus > 1 else None
        return nvlink_mesh(
            num_gpus,
            link_bandwidth=sample["bandwidth"] if sample else GBps(25.0),
            link_latency=sample["latency"] if sample else us(1.5),
            allreduce_bus_bandwidth=topology.allreduce_bus_bandwidth,
        )
    if topology.kind is InterconnectKind.PCIE_SWITCH:
        sample = topology.graph.edges[0, "switch"]
        return pcie_switch(
            num_gpus,
            lane_bandwidth=sample["bandwidth"],
            lane_latency=sample["latency"],
            allreduce_bus_bandwidth=topology.allreduce_bus_bandwidth,
        )
    raise ConfigError("cannot rescale a CUSTOM topology; build it explicitly")


# ----------------------------------------------------------------------
# The paper's testbeds (§4.1)
# ----------------------------------------------------------------------

#: NVIDIA Tesla V100 SXM2 16 GB: 125 TFLOPS FP16 tensor peak, 900 GB/s HBM2.
V100_16GB = GpuSpec(
    name="V100-16GB",
    fp16_flops=TFLOPS(125.0),
    memory_bandwidth=GBps(900.0),
    memory_capacity=GB(16.0),
    num_sms=80,
    kernel_launch_overhead=us(5.0),
)

#: NVIDIA A100 80 GB PCIe: 312 TFLOPS FP16 tensor peak, 1935 GB/s HBM2e.
A100_80GB_PCIE = GpuSpec(
    name="A100-80GB",
    fp16_flops=TFLOPS(312.0),
    memory_bandwidth=GBps(1935.0),
    memory_capacity=GB(80.0),
    num_sms=108,
    kernel_launch_overhead=us(5.0),
)


def v100_nvlink_node(num_gpus: int = 4) -> NodeSpec:
    """The paper's V100 testbed: 4× V100-16GB with NVLink (32.75 GB/s AR)."""
    return NodeSpec(
        name="v100-nvlink",
        gpu=V100_16GB,
        topology=nvlink_mesh(num_gpus),
    )


def a100_pcie_node(num_gpus: int = 4) -> NodeSpec:
    """The paper's A100 testbed: 4× A100-80GB over PCIe (14.88 GB/s AR)."""
    return NodeSpec(
        name="a100-pcie",
        gpu=A100_80GB_PCIE,
        topology=pcie_switch(num_gpus),
    )


#: Named testbed factories, keyed the way the experiment harness refers to them.
TESTBEDS: Dict[str, Callable[[], NodeSpec]] = {
    "v100": v100_nvlink_node,
    "a100": a100_pcie_node,
}
