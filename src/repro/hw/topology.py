"""Multi-GPU interconnect topologies.

The paper's Fig. 1 distinguishes two node architectures: GPUs attached to a
PCIe switch with no direct link (all GPU↔GPU traffic crosses the switch at
PCIe bandwidth) and GPUs with direct links (NVLink / Infinity Fabric).  We
represent a node's interconnect as a small :mod:`networkx` graph so the
collective engine can query per-pair bandwidth and so alternative topologies
(partial meshes, rings) can be modelled without touching the simulator.

Edges carry ``bandwidth`` (bytes/s, per direction) and ``latency`` (µs).  The
host↔GPU control path (kernel launches) always crosses PCIe and is modelled
separately in :class:`repro.sim.host.Host`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ConfigError
from repro.units import GBps, us

__all__ = ["InterconnectKind", "Topology", "nvlink_mesh", "pcie_switch"]


class InterconnectKind(enum.Enum):
    """The flavour of GPU↔GPU interconnect a topology models."""

    NVLINK = "nvlink"
    PCIE_SWITCH = "pcie_switch"
    CUSTOM = "custom"


@dataclass
class Topology:
    """A node-local GPU interconnect.

    Parameters
    ----------
    num_gpus:
        Number of GPU endpoints (vertices ``0..num_gpus-1``).
    kind:
        Interconnect flavour, used for reporting only.
    graph:
        Undirected graph over GPU ids; each edge must define ``bandwidth``
        (bytes/s per direction) and ``latency`` (µs).  A missing edge means
        traffic is routed through the switch vertex ``"switch"`` when present.
    allreduce_bus_bandwidth:
        Measured peak all-reduce *bus* bandwidth (bytes/s) in the NCCL-tests
        sense.  The paper reports 32.75 GB/s (V100 NVLink) and 14.88 GB/s
        (A100 PCIe); the ring all-reduce cost model consumes this directly so
        collective costs match the measured machine rather than a theoretical
        link sum.
    """

    num_gpus: int
    kind: InterconnectKind
    graph: nx.Graph = field(repr=False)
    allreduce_bus_bandwidth: float = GBps(25.0)

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.allreduce_bus_bandwidth <= 0:
            raise ConfigError("allreduce_bus_bandwidth must be positive")
        for gpu in range(self.num_gpus):
            if gpu not in self.graph:
                raise ConfigError(f"topology graph is missing GPU vertex {gpu}")

    # ------------------------------------------------------------------
    # Pair queries
    # ------------------------------------------------------------------
    def p2p_path(self, src: int, dst: int) -> list:
        """Vertices traversed by a point-to-point transfer (inclusive)."""
        self._check_gpu(src)
        self._check_gpu(dst)
        return nx.shortest_path(self.graph, src, dst)

    def p2p_bandwidth(self, src: int, dst: int) -> float:
        """Bottleneck bandwidth (bytes/s) between two GPUs."""
        if src == dst:
            raise ConfigError("p2p bandwidth is undefined for src == dst")
        path = self.p2p_path(src, dst)
        return min(
            self.graph.edges[a, b]["bandwidth"] for a, b in zip(path, path[1:])
        )

    def p2p_latency(self, src: int, dst: int) -> float:
        """Accumulated hop latency (µs) between two GPUs."""
        if src == dst:
            return 0.0
        path = self.p2p_path(src, dst)
        return sum(self.graph.edges[a, b]["latency"] for a, b in zip(path, path[1:]))

    def has_direct_link(self, src: int, dst: int) -> bool:
        """True when the two GPUs share an edge (no switch hop)."""
        self._check_gpu(src)
        self._check_gpu(dst)
        return self.graph.has_edge(src, dst)

    def gpu_ids(self) -> range:
        """The GPU vertex ids, ``range(num_gpus)``."""
        return range(self.num_gpus)

    def _check_gpu(self, gpu: int) -> None:
        if not 0 <= gpu < self.num_gpus:
            raise ConfigError(
                f"GPU id {gpu} out of range for {self.num_gpus}-GPU topology"
            )


def nvlink_mesh(
    num_gpus: int,
    *,
    link_bandwidth: float = GBps(25.0),
    link_latency: float = us(1.5),
    allreduce_bus_bandwidth: float = GBps(32.75),
) -> Topology:
    """Fully-connected NVLink mesh, the paper's V100 testbed shape.

    Each GPU pair gets a direct edge with ``link_bandwidth`` per direction
    (first-generation NVLink sustains ~25 GB/s per direction on a V100 pair).
    """
    g = nx.Graph()
    g.add_nodes_from(range(num_gpus))
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            g.add_edge(a, b, bandwidth=link_bandwidth, latency=link_latency)
    return Topology(
        num_gpus=num_gpus,
        kind=InterconnectKind.NVLINK,
        graph=g,
        allreduce_bus_bandwidth=allreduce_bus_bandwidth,
    )


def pcie_switch(
    num_gpus: int,
    *,
    lane_bandwidth: float = GBps(16.0),
    lane_latency: float = us(3.0),
    allreduce_bus_bandwidth: float = GBps(14.88),
) -> Topology:
    """GPUs hanging off one PCIe switch, the paper's A100 testbed shape.

    No direct GPU↔GPU edges exist; every transfer crosses the ``"switch"``
    vertex, bounded by a single PCIe lane bandwidth in each hop.
    """
    g = nx.Graph()
    g.add_nodes_from(range(num_gpus))
    g.add_node("switch")
    for gpu in range(num_gpus):
        g.add_edge(gpu, "switch", bandwidth=lane_bandwidth, latency=lane_latency)
    return Topology(
        num_gpus=num_gpus,
        kind=InterconnectKind.PCIE_SWITCH,
        graph=g,
        allreduce_bus_bandwidth=allreduce_bus_bandwidth,
    )
