"""Measurement core of the perf harness.

Methodology
-----------
Single-process, interleaved, best-of-N.  Container wall clocks are noisy
(±10–15% between invocations on a shared host), so each scenario is timed
``repeats`` times and the **minimum** wall time is the estimate — the min
converges on the uncontended cost, which is the quantity a cache can
actually change.  Ablation arms are interleaved (on, off, on, off, …)
rather than run back-to-back so slow host phases hit both arms equally.

Reported per cell:

* ``wall_s`` — best-of-N host seconds for the run;
* ``events`` / ``events_per_sec`` — simulator events processed and the
  resulting rate (the regression-guard metric: scenario event counts are
  deterministic, so events/sec moves only when the hot path does);
* ``sim_s`` / ``wall_per_sim_s`` — simulated seconds covered and host
  seconds burned per simulated second;
* cache counters from the strategy's ``perf_counters()`` when it has one.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.perf.scenarios import SCENARIOS, PerfScenario, bench_scale

__all__ = ["run_suite", "check_regression", "measure"]

#: Results-file schema version (bump on incompatible shape changes).
SCHEMA_VERSION = 1

#: Best-of-N repeats per (scenario, arm) at each scale.
_REPEATS = {"smoke": 3, "full": 5}

#: CI fails when a cell's events/sec drops below (1 - tolerance) × baseline.
_DEFAULT_TOLERANCE = 0.20


def _one_run(scenario: PerfScenario, scale: str, cache_on: bool) -> Dict:
    srv, jobs = scenario.build(scale, cache_on)
    gc.collect()
    t0 = time.perf_counter()
    result = srv.run(jobs)
    wall = time.perf_counter() - t0
    sim_us = srv.engine.now
    cell = {
        "wall_s": wall,
        "events": result.wall_events,
        "sim_s": sim_us / 1e6,
    }
    counters = getattr(srv.strategy, "perf_counters", None)
    if counters is not None:
        cell["counters"] = counters()
    return cell


def _finalize(cell: Dict) -> Dict:
    wall = cell["wall_s"]
    cell["wall_s"] = round(wall, 4)
    cell["events_per_sec"] = round(cell["events"] / wall, 1) if wall > 0 else 0.0
    sim_s = cell.pop("sim_s")
    cell["sim_s"] = round(sim_s, 4)
    cell["wall_per_sim_s"] = round(wall / sim_s, 4) if sim_s > 0 else 0.0
    return cell


def measure(
    scenario: PerfScenario, scale: str, *, repeats: Optional[int] = None
) -> Dict:
    """Time one scenario; ablations get interleaved on/off arms."""
    scale = bench_scale(scale)
    n = repeats if repeats is not None else _REPEATS[scale]
    if n < 1:
        raise ConfigError(f"repeats must be >= 1, got {n}")
    arms = (True, False) if scenario.ablate else (True,)
    best: Dict[bool, Dict] = {}
    for _ in range(n):
        for cache_on in arms:
            cell = _one_run(scenario, scale, cache_on)
            prior = best.get(cache_on)
            if prior is None or cell["wall_s"] < prior["wall_s"]:
                best[cache_on] = cell
    if not scenario.ablate:
        return _finalize(best[True])
    on, off = _finalize(best[True]), _finalize(best[False])
    return {
        "cache_on": on,
        "cache_off": off,
        "speedup": round(off["wall_s"] / on["wall_s"], 2)
        if on["wall_s"] > 0 else 0.0,
    }


def run_suite(
    scale: str,
    *,
    only: Optional[List[str]] = None,
    repeats: Optional[int] = None,
    progress=None,
) -> Dict:
    """Run the standardized scenarios; return the results document."""
    scale = bench_scale(scale)
    names = list(SCENARIOS) if not only else list(only)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ConfigError(
            f"unknown scenario(s) {unknown}; choose from {sorted(SCENARIOS)}"
        )
    scenarios: Dict[str, Dict] = {}
    for name in names:
        if progress is not None:
            progress(name)
        scenarios[name] = measure(SCENARIOS[name], scale, repeats=repeats)
    return {
        "schema": SCHEMA_VERSION,
        "scale": scale,
        "scenarios": scenarios,
    }


# ----------------------------------------------------------------------
# Regression guard
# ----------------------------------------------------------------------
def _cells_with_rate(doc: Dict) -> Dict[str, float]:
    """Flatten a results document to {cell name: events/sec}."""
    out: Dict[str, float] = {}
    for name, cell in doc.get("scenarios", {}).items():
        if "cache_on" in cell:  # ablation: guard the default (on) arm
            out[name] = cell["cache_on"]["events_per_sec"]
        else:
            out[name] = cell["events_per_sec"]
    return out


def check_regression(
    current: Dict, baseline_path: str, *, tolerance: Optional[float] = None
) -> List[str]:
    """Compare events/sec against a committed baseline file.

    Returns a list of human-readable failures (empty when clean).  Only
    baselines recorded at the *same scale* are comparable — a smoke run is
    never judged against full-scale numbers.
    """
    if tolerance is None:
        tolerance = float(
            os.environ.get("LIGER_PERF_TOLERANCE", _DEFAULT_TOLERANCE)
        )
    if not 0.0 < tolerance < 1.0:
        raise ConfigError(f"tolerance must be in (0, 1), got {tolerance}")
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline_doc = json.load(fh)
    baseline = baseline_doc.get("scales", {}).get(current["scale"])
    if baseline is None:
        return [
            f"baseline {baseline_path} has no scale={current['scale']!r} "
            "section; record one before enabling the regression gate"
        ]
    base_rates = _cells_with_rate(baseline)
    cur_rates = _cells_with_rate(current)
    failures = []
    for name, base in sorted(base_rates.items()):
        cur = cur_rates.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = base * (1.0 - tolerance)
        if cur < floor:
            failures.append(
                f"{name}: {cur:.0f} events/s is {100 * (1 - cur / base):.0f}% "
                f"below baseline {base:.0f} (tolerance {tolerance:.0%})"
            )
    return failures


def merge_into_baseline(doc: Dict, path: str) -> Dict:
    """Fold one run into ``BENCH_5.json``'s per-scale sections."""
    merged = {"schema": SCHEMA_VERSION, "scales": {}}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            prior = json.load(fh)
        if isinstance(prior.get("scales"), dict):
            merged["scales"].update(prior["scales"])
    merged["scales"][doc["scale"]] = {
        "scale": doc["scale"],
        "scenarios": doc["scenarios"],
    }
    return merged
