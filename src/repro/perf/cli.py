"""``python -m repro perf`` — run the perf harness.

Usage::

    python -m repro perf                          # smoke scale, print only
    python -m repro perf --scale full --out BENCH_5.json
    python -m repro perf --scenario steady_decode --repeats 7
    python -m repro perf --check BENCH_10.json    # CI regression gate
    python -m repro perf --workers 4              # multiprocess fan-out

``--out`` merges the run into the per-scale sections of the baseline file
(so a smoke run never clobbers the committed full-scale numbers), and
``--check`` compares this run's events/sec against the matching scale
section, exiting 1 on a >20% regression (``LIGER_PERF_TOLERANCE``
overrides the threshold).  ``--workers N`` fans scenarios across N
processes (:mod:`repro.perf.fanout`): deterministic fields merge
byte-identically with a sequential run, wall times reflect whatever cores
were free.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.errors import ReproError
from repro.perf.harness import (
    check_regression,
    merge_into_baseline,
    run_suite,
)
from repro.perf.scenarios import SCENARIOS


def _print_doc(doc: dict) -> None:
    print(f"perf suite [scale={doc['scale']}]")
    for name, cell in doc["scenarios"].items():
        if "cache_on" in cell:
            on, off = cell["cache_on"], cell["cache_off"]
            print(
                f"  {name:24s} on={on['wall_s']:.3f}s "
                f"off={off['wall_s']:.3f}s speedup={cell['speedup']:.2f}x "
                f"({on['events_per_sec']:.0f} events/s, "
                f"{on['wall_per_sim_s']:.4f} wall-s/sim-s)"
            )
        else:
            print(
                f"  {name:24s} {cell['wall_s']:.3f}s "
                f"({cell['events_per_sec']:.0f} events/s, "
                f"{cell['wall_per_sim_s']:.4f} wall-s/sim-s)"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="Time the standardized serving scenarios.",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default=os.environ.get("LIGER_BENCH_SCALE", "smoke"),
        help="workload scale (default: $LIGER_BENCH_SCALE or smoke)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help=f"run only this scenario (repeatable); one of {sorted(SCENARIOS)}",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="best-of-N repeats per arm (default: 3 smoke / 5 full)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="merge results into this baseline file (e.g. BENCH_10.json)",
    )
    parser.add_argument(
        "--check", metavar="PATH",
        help="fail (exit 1) on events/sec regression vs this baseline",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="fan scenarios across N worker processes (0 = in-process)",
    )
    args = parser.parse_args(argv)

    try:
        if args.workers > 0:
            from repro.perf.fanout import run_suite_fanout

            doc = run_suite_fanout(
                args.scale,
                workers=args.workers,
                only=args.scenario,
                repeats=args.repeats,
                progress=lambda name: print(f"· {name}", file=sys.stderr),
            )
        else:
            doc = run_suite(
                args.scale,
                only=args.scenario,
                repeats=args.repeats,
                progress=lambda name: print(f"· {name}", file=sys.stderr),
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_doc(doc)

    if args.out:
        merged = merge_into_baseline(doc, args.out)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.check:
        failures = check_regression(doc, args.check)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no events/sec regression vs {args.check}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
