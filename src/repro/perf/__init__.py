"""Performance benchmark harness — the repo's perf trajectory.

``python -m repro perf`` times standardized serving scenarios (the Table-1
models across all four servers, a steady-decode run, and a bursty-overload
run), reports events/second and wall-clock per simulated second, and writes
``BENCH_5.json`` at the repo root.  The two ablation scenarios additionally
run an A/B between the hot-path caches on (the default configuration) and
off (``enable_plan_cache=False, enable_assembly_cache=False,
enable_sim_memos=False``) and report the speedup; the golden-trace suite
separately proves both arms produce bit-identical timelines.

Scale comes from ``LIGER_BENCH_SCALE`` (``smoke`` for CI seconds-scale runs,
``full`` for the committed baseline), matching the convention of the
``benchmarks/`` figure suite.
"""

from repro.perf.harness import run_suite, check_regression
from repro.perf.scenarios import SCENARIOS, PerfScenario

__all__ = ["run_suite", "check_regression", "SCENARIOS", "PerfScenario"]
