"""Standardized perf scenarios.

Every scenario is a *builder*: it constructs a fresh server + workload pair
for one measured run, so repeated timings never share mutable state.  Two
families:

* **Matrix cells** — every Table-1 model on every server, liger strategy,
  a short golden-style workload.  Tracked cache-on only; their events/sec
  is the regression surface the CI perf job guards.
* **Ablations** — ``steady_decode`` (the acceptance scenario: recurring
  decode shapes on the continuous-batching server, where the plan cache
  replays nearly every round) and ``bursty_overload``.  Measured twice,
  caches on vs caches off, and reported with the speedup.

Scales:

* ``smoke`` — layer-reduced models and short workloads; seconds total (CI);
* ``full``  — the committed-baseline scale (minutes total).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ConfigError

__all__ = ["PerfScenario", "SCENARIOS", "ablation_config", "bench_scale"]

#: Steady-decode tuning: division factor and processing-list size chosen to
#: maximize round recurrence (gen_tokens=(1,1) keeps every decode shape
#: identical, so the plan cache hits on >95% of rounds after warmup).
_STEADY_DIVISION = 16
_STEADY_INFLIGHT = 6


def bench_scale(scale: str) -> str:
    """Validate and return a perf scale (``smoke`` or ``full``)."""
    if scale not in ("smoke", "full"):
        raise ConfigError(f"perf scale must be smoke/full, got {scale!r}")
    return scale


def ablation_config(cache_on: bool, **overrides):
    """The A/B arms: every PR-introduced cache toggled as one unit.

    The off arm disables the schedule-plan cache, the assembly cache, the
    simulator memos (machine slowdown-shape memo + profiler occupancy/
    memory memos), and the compiled-timeline fast path together — the
    harness measures "all hot-path caches" vs "none", and the golden suite
    pins both arms to identical timelines.
    """
    from repro.core import LigerConfig

    return LigerConfig(
        enable_plan_cache=cache_on,
        enable_assembly_cache=cache_on,
        enable_sim_memos=cache_on,
        enable_timeline_replay=cache_on,
        **overrides,
    )


@dataclass(frozen=True)
class PerfScenario:
    """One standardized measurement target.

    ``build(scale, cache_on)`` returns ``(server, jobs)`` ready for one
    ``server.run(jobs)`` call.  ``ablate`` marks the scenario as an A/B
    (measured with caches on *and* off); matrix cells are cache-on only.
    """

    name: str
    description: str
    build: Callable[[str, bool], Tuple[object, object]]
    ablate: bool = False


def _reset_batch_ids() -> None:
    # The process-global batch-id counter must rebase between measured runs
    # so repeated builds produce identical kernel names (and identical
    # fingerprints for the plan cache to hit on).
    import itertools

    from repro.serving import request as request_mod

    request_mod._batch_ids = itertools.count()


# ----------------------------------------------------------------------
# Ablation scenarios
# ----------------------------------------------------------------------
def _build_steady_decode(scale: str, cache_on: bool):
    """The acceptance scenario: steady decode on continuous batching.

    Single-token generations at a fixed context length arriving above the
    service rate keep the processing list saturated with recurring shapes —
    the workload the plan cache is built for.
    """
    from repro.hw import v100_nvlink_node
    from repro.models import OPT_30B
    from repro.serving.api import make_strategy
    from repro.serving.generation import (
        ContinuousBatchingServer,
        generation_workload,
    )

    _reset_batch_ids()
    model = OPT_30B.scaled_layers(4)
    node = v100_nvlink_node(2)
    cfg = ablation_config(
        cache_on,
        max_inflight=_STEADY_INFLIGHT,
        division_factor=_STEADY_DIVISION,
    )
    strat = make_strategy("liger", model, node, config=cfg)
    n = 1440 if scale == "full" else 240
    jobs = generation_workload(
        n, 1200.0, context_len=16, gen_tokens=(1, 1), seed=0
    )
    srv = ContinuousBatchingServer(
        model, node, strat, max_batch=8, pipeline_depth=2,
        record_trace=False, check_memory=False,
    )
    return srv, jobs


def _build_bursty_overload(scale: str, cache_on: bool):
    """Bursty arrivals: alternating burst/lull phases above the mean rate.

    Bursts mix queue depths, so round fingerprints recur less than in
    steady decode — the cache's hit rate (and speedup) is expected to be
    lower here; the scenario exists to keep that regime measured.
    """
    from repro.hw import v100_nvlink_node
    from repro.models import OPT_30B
    from repro.serving.api import make_strategy
    from repro.serving.arrival import BurstyProcess
    from repro.serving.generation import (
        ContinuousBatchingServer,
        generation_workload,
    )

    _reset_batch_ids()
    model = OPT_30B.scaled_layers(4)
    node = v100_nvlink_node(2)
    cfg = ablation_config(
        cache_on,
        max_inflight=_STEADY_INFLIGHT,
        division_factor=_STEADY_DIVISION,
    )
    strat = make_strategy("liger", model, node, config=cfg)
    n = 720 if scale == "full" else 160
    jobs = generation_workload(
        n, 1200.0, context_len=16, gen_tokens=(1, 2), seed=0,
        arrival=BurstyProcess(1200.0, burstiness=4.0, phase_requests=32),
    )
    srv = ContinuousBatchingServer(
        model, node, strat, max_batch=8, pipeline_depth=2,
        record_trace=False, check_memory=False,
    )
    return srv, jobs


def _build_obs_overhead(scale: str, cache_on: bool):
    """Telemetry ablation: the bursty-overload run with and without obs.

    Unlike the cache ablations, both arms keep every cache on; the toggled
    unit is observability itself.  The ``True`` arm (the one the regression
    gate guards) runs bare — no Observability at all, the zero-cost
    contract's hot path — and the ``False`` arm arms the full telemetry
    store plus two SLO policies, so the reported "speedup" is the wall-time
    overhead factor of sampling, windowing, and burn-rate evaluation.
    """
    from repro.hw import v100_nvlink_node
    from repro.models import OPT_30B
    from repro.serving.api import make_strategy
    from repro.serving.arrival import BurstyProcess
    from repro.serving.generation import (
        ContinuousBatchingServer,
        generation_workload,
    )

    _reset_batch_ids()
    model = OPT_30B.scaled_layers(4)
    node = v100_nvlink_node(2)
    cfg = ablation_config(
        True,  # caches stay on in BOTH arms; obs is the toggled unit
        max_inflight=_STEADY_INFLIGHT,
        division_factor=_STEADY_DIVISION,
    )
    strat = make_strategy("liger", model, node, config=cfg)
    obs = None
    if not cache_on:
        from repro.obs import Observability, ObservabilityConfig
        from repro.obs.slo import SloPolicy

        obs = Observability(
            ObservabilityConfig(
                telemetry=True,
                window_us=20_000.0,
                slo_policies=(
                    SloPolicy("availability", target=0.95),
                    SloPolicy(
                        "latency-p99",
                        objective="latency",
                        target=0.99,
                        latency_threshold_ms=50.0,
                    ),
                ),
            )
        )
    n = 720 if scale == "full" else 160
    jobs = generation_workload(
        n, 1200.0, context_len=16, gen_tokens=(1, 2), seed=0,
        arrival=BurstyProcess(1200.0, burstiness=4.0, phase_requests=32),
    )
    srv = ContinuousBatchingServer(
        model, node, strat, max_batch=8, pipeline_depth=2,
        record_trace=False, check_memory=False, observability=obs,
    )
    return srv, jobs


def _build_moe_prefill(scale: str, cache_on: bool):
    """MoE expert-parallel prefill: expert overlap vs no overlap.

    Like ``obs_overhead``, both arms keep every cache on; the toggled unit
    is cross-batch interleaving itself.  The ``True`` arm serves with the
    ``expert_overlap`` policy and a deep processing list; the ``False``
    arm pins ``max_inflight=1`` — one batch in flight, so dispatch/combine
    all-to-alls have nothing to hide behind (the Intra-Op regime).  The
    ``sim_s`` gap between the arms is the makespan reduction expert
    overlap buys; ``speedup`` stays the host-time ratio like every cell.
    """
    from repro.hw import v100_nvlink_node
    from repro.models import MOE_16E
    from repro.serving.api import make_strategy
    from repro.serving.server import Server
    from repro.serving.workload import general_trace

    _reset_batch_ids()
    layers = 4 if scale == "full" else 2
    model = MOE_16E.scaled_layers(layers)
    node = v100_nvlink_node(4)
    cfg = ablation_config(
        True,  # caches stay on in BOTH arms; overlap is the toggled unit
        policy="expert_overlap",
        max_inflight=(_STEADY_INFLIGHT if cache_on else 1),
    )
    strat = make_strategy("liger", model, node, config=cfg)
    # The rate must outrun service so batches pile into the processing
    # list — with nothing queued, both arms degenerate to intra-op.
    n = 48 if scale == "full" else 12
    batches = general_trace(n, 2000.0, 2, seed=0)
    srv = Server(model, node, strat, record_trace=False, check_memory=False)
    return srv, batches


# ----------------------------------------------------------------------
# Table-1 matrix cells
# ----------------------------------------------------------------------
def _matrix_builder(model_name: str, server: str):
    def _build(scale: str, cache_on: bool):
        from repro.hw import v100_nvlink_node
        from repro.models import MODELS
        from repro.serving.api import make_strategy

        _reset_batch_ids()
        layers = 4 if scale == "full" else 2
        model = MODELS[model_name].scaled_layers(layers)
        node = v100_nvlink_node(4)
        strat = make_strategy(
            "liger", model, node, config=ablation_config(cache_on)
        )
        if server == "server":
            from repro.serving.server import Server
            from repro.serving.workload import general_trace

            batches = general_trace(12, 40.0, 2, seed=0)
            srv = Server(
                model, node, strat, record_trace=False, check_memory=False
            )
            return srv, batches
        if server == "lifecycle":
            from repro.serving.lifecycle import LifecycleServer, chat_workload

            chats = chat_workload(6, 120.0, seed=0)
            srv = LifecycleServer(
                model, node, strat, prefill_batch=2, max_decode_batch=8,
                record_trace=False, check_memory=False,
            )
            return srv, chats
        from repro.serving.generation import (
            ContinuousBatchingServer,
            StaticBatchingServer,
            generation_workload,
        )

        jobs = generation_workload(16, 200.0, seed=0)
        if server == "static":
            srv = StaticBatchingServer(
                model, node, strat, batch_size=4,
                record_trace=False, check_memory=False,
            )
        elif server == "continuous":
            srv = ContinuousBatchingServer(
                model, node, strat, max_batch=8, pipeline_depth=2,
                record_trace=False, check_memory=False,
            )
        else:  # pragma: no cover - registry is static
            raise ConfigError(f"unknown matrix server {server!r}")
        return srv, jobs

    return _build


_TABLE1_MODELS = ("OPT-30B", "OPT-66B", "GLM-130B")
_SERVERS = ("server", "static", "continuous", "lifecycle")


def _all_scenarios() -> Dict[str, PerfScenario]:
    scenarios: List[PerfScenario] = [
        PerfScenario(
            name="steady_decode",
            description=(
                "Single-token decode at a saturating constant rate on the "
                "continuous-batching server (the plan cache's home turf)"
            ),
            build=_build_steady_decode,
            ablate=True,
        ),
        PerfScenario(
            name="bursty_overload",
            description=(
                "Burst/lull arrivals above the service rate on the "
                "continuous-batching server"
            ),
            build=_build_bursty_overload,
            ablate=True,
        ),
        PerfScenario(
            name="moe_prefill",
            description=(
                "16-expert MoE prefill under expert parallelism: "
                "expert_overlap policy vs single-batch no-overlap serving"
            ),
            build=_build_moe_prefill,
            ablate=True,
        ),
        PerfScenario(
            name="obs_overhead",
            description=(
                "Bursty overload with full telemetry + SLO policies armed "
                "vs no observability (speedup = obs overhead factor)"
            ),
            build=_build_obs_overhead,
            ablate=True,
        ),
    ]
    for model_name in _TABLE1_MODELS:
        for server in _SERVERS:
            key = model_name.replace("-", "_").lower()
            scenarios.append(
                PerfScenario(
                    name=f"{key}/{server}",
                    description=f"{model_name} on the {server} server, liger",
                    build=_matrix_builder(model_name, server),
                )
            )
    return {s.name: s for s in scenarios}


#: Every standardized scenario, keyed by name.
SCENARIOS: Dict[str, PerfScenario] = _all_scenarios()
