"""Multiprocess fan-out for the perf and experiment harnesses.

Scenarios are independent — each builds its own server, workload, and
engine from fixed seeds — so a suite can be split across worker processes
with no shared state.  The contract that makes this safe to merge:

* **Seeded determinism.**  Every scenario derives all randomness from the
  seeds baked into its builder, and every worker starts from a fresh
  interpreter state, so a cell's deterministic fields (``events``,
  ``sim_s``, cache and timeline counters) are identical no matter which
  process — or how many processes — produced it.
* **Canonical merge order.**  The parent assembles the merged document in
  the same scenario order as the sequential :func:`~repro.perf.harness
  .run_suite`, so for the same seeds the merged BENCH output is
  byte-identical to a sequential run up to the wall-clock-derived fields
  (``wall_s`` / ``events_per_sec`` / ``wall_per_sim_s``) and the
  ``fanout_workers`` provenance counter.
* **Worker protocol.**  Workers are forked before any scenario runs; each
  receives ``(scenario name, scale, repeats)``, runs the standard
  :func:`~repro.perf.harness.measure` (same best-of-N, same interleaved
  ablation arms), and returns its finished cell.  ``LIGER_FANOUT_WORKERS``
  is set in every worker so the cell's counters record which parallelism
  produced them (0 = in-process sequential run).

Timing fidelity: workers run concurrently, so with more workers than idle
cores the per-cell wall times degrade even though the deterministic fields
do not.  Use fan-out to cut suite latency on idle multi-core hosts and for
the CI smoke lane; record committed full-scale baselines sequentially.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.perf.harness import SCHEMA_VERSION, measure
from repro.perf.scenarios import SCENARIOS, bench_scale

__all__ = ["run_suite_fanout", "fanout_map"]

#: Environment variable announcing fan-out worker membership (and width) to
#: the code running inside a worker; surfaced by ``strategy.perf_counters()``
#: as the ``fanout_workers`` counter / ``repro_perf_fanout_workers`` gauge.
ENV_WORKERS = "LIGER_FANOUT_WORKERS"


def _init_worker(workers: int) -> None:
    os.environ[ENV_WORKERS] = str(workers)


def _measure_task(args: Tuple[str, str, Optional[int]]) -> Tuple[str, Dict]:
    name, scale, repeats = args
    return name, measure(SCENARIOS[name], scale, repeats=repeats)


def _figure_task(args: Tuple[str, str]) -> Tuple[str, str, str]:
    # Lazy import: the experiments package pulls in the full figure stack,
    # which perf-only runs never need.
    from repro.experiments.figures import ALL_FIGURES

    name, scale = args
    result = ALL_FIGURES[name](scale=scale)
    return result.figure, result.title, result.text


def fanout_map(task, items: List, workers: int, *, progress=None) -> List:
    """Run ``task`` over ``items`` in a worker pool, results in item order.

    ``task`` must be a module-level callable (it crosses the process
    boundary by pickle).  Results are awaited — and ``progress`` called —
    in submission order regardless of completion order, so downstream
    consumers see the same sequence a sequential loop would produce.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    workers = min(workers, len(items)) or 1
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(workers,)
    ) as pool:
        futures = [pool.submit(task, item) for item in items]
        out = []
        for item, future in zip(items, futures):
            if progress is not None:
                progress(item)
            out.append(future.result())
    return out


def run_suite_fanout(
    scale: str,
    *,
    workers: int,
    only: Optional[List[str]] = None,
    repeats: Optional[int] = None,
    progress=None,
) -> Dict:
    """Fan the standardized scenarios across ``workers`` processes.

    Returns the same results document as
    :func:`~repro.perf.harness.run_suite` — same schema, same scenario
    order — so ``--out`` merging and ``--check`` gating are oblivious to
    which path produced it.
    """
    scale = bench_scale(scale)
    names = list(SCENARIOS) if not only else list(only)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ConfigError(
            f"unknown scenario(s) {unknown}; choose from {sorted(SCENARIOS)}"
        )
    tasks = [(name, scale, repeats) for name in names]
    results = fanout_map(
        _measure_task,
        tasks,
        workers,
        progress=(lambda t: progress(t[0])) if progress is not None else None,
    )
    return {
        "schema": SCHEMA_VERSION,
        "scale": scale,
        "scenarios": {name: cell for name, cell in results},
    }
