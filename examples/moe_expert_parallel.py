#!/usr/bin/env python3
"""MoE expert parallelism: hide all-to-alls behind other batches' experts.

A Mixture-of-Experts layer replaces the dense FFN with a router plus
``num_experts`` expert FFNs, of which each token visits ``top_k``.  Under
expert parallelism the experts are spread across GPUs and every layer pays
two **all-to-all** exchanges — dispatch (tokens to their experts) and
combine (results back) — on top of the attention block's all-reduce.

That is a new resource class for Algorithm 1.  The default dichotomy
policy delimits primary runs by compute-vs-communication *kind*; the
``expert_overlap`` policy delimits them by resource class, so a dispatch
all-to-all window of one batch can be packed with expert GEMMs (and even
NVLink all-reduces) of other in-flight batches.

This example serves a 16-expert model twice with the same workload:

* ``no overlap`` — ``max_inflight=1``: one batch in flight, every
  all-to-all sits exposed on the wire (the Intra-Op regime);
* ``expert_overlap`` — a deep processing list under the overlap policy.

and asserts the overlap schedule finishes the same work strictly faster.

Run:
    python examples/moe_expert_parallel.py
"""

from repro.core import LigerConfig
from repro.hw import v100_nvlink_node
from repro.models import MOE_16E, expert_capacity
from repro.serving.api import make_strategy
from repro.serving.server import Server
from repro.serving.workload import general_trace


def _serve_makespan(model, node, *, max_inflight: int):
    import itertools

    from repro.serving import request as request_mod

    # Rebase the global batch-id counter so both runs see identical batch
    # names (and therefore identical kernel streams).
    request_mod._batch_ids = itertools.count()
    config = LigerConfig(policy="expert_overlap", max_inflight=max_inflight)
    strategy = make_strategy("liger", model, node, config=config)
    server = Server(model, node, strategy, record_trace=False, check_memory=False)
    result = server.run(general_trace(24, 2000.0, 2, seed=0))
    return server.engine.now, strategy.stats, result


def main() -> None:
    model = MOE_16E.scaled_layers(2)
    node = v100_nvlink_node(4)
    ep = node.num_gpus
    tokens = 2 * 128  # largest prefill batch in the trace: batch 2 × seq 128
    print(
        f"{model.name} on {node.name}: {model.num_experts} experts, "
        f"top-{model.top_k} routing, expert parallelism {ep} "
        f"({model.num_experts // ep} experts/GPU, capacity "
        f"{expert_capacity(tokens, model.num_experts, model.top_k)} "
        f"tokens/expert at m={tokens})\n"
    )

    base_us, _, base_result = _serve_makespan(model, node, max_inflight=1)
    over_us, stats, over_result = _serve_makespan(model, node, max_inflight=6)

    print(f"no overlap      makespan {base_us / 1e3:8.2f} ms   "
          f"{base_result.summary()}")
    print(f"expert_overlap  makespan {over_us / 1e3:8.2f} ms   "
          f"{over_result.summary()}")
    speedup = base_us / over_us
    print(
        f"\nexpert_overlap speedup: {speedup:.3f}x "
        f"({stats.rounds_launched} rounds, "
        f"{stats.total_fill:.0f} us of secondary fill packed into "
        f"all-to-all/compute windows)"
    )

    # The point of the policy: the same kernels, strictly less wall time.
    assert stats.total_fill > 0, "expert_overlap packed no secondary work"
    assert speedup > 1.0, (
        f"expert overlap must beat no-overlap serving, got {speedup:.3f}x"
    )
    print("OK: overlap schedule strictly faster than no-overlap serving")


if __name__ == "__main__":
    main()
