#!/usr/bin/env python3
"""Online chatbot serving: compare all four parallelism strategies.

The scenario from the paper's introduction: a latency-critical online
service (chatbot / AI programmer) whose request rate climbs over the day.
We sweep the arrival rate on the A100-PCIe testbed and print one row per
(rate, strategy), reproducing the qualitative content of the paper's
Fig. 10: intra-op saturates first, the pipelines never improve latency, and
Liger holds intra-op latency while pushing throughput past both.

Run:
    python examples/serving_comparison.py
"""

from repro import OPT_30B, a100_pcie_node
from repro.experiments import ExperimentRecord, ExperimentRunner, format_table
from repro.experiments.figures import PINNED_FACTORS


def main() -> None:
    node = a100_pcie_node(4)
    runner = ExperimentRunner(
        OPT_30B,
        node,
        figure="example",
        panel="chatbot",
        contention_factors=PINNED_FACTORS["a100"],
    )
    # Rates relative to the estimated intra-op saturation throughput.
    rates = runner.relative_rates((0.4, 0.9, 1.1, 1.3), batch_size=2)
    print(
        f"Serving {OPT_30B.name} on {node.name}; "
        f"intra-op saturation ≈ {runner.saturation_rate(2):.1f} req/s\n"
    )
    records = runner.sweep(
        ("intra", "inter", "inter_th", "liger"),
        rates,
        num_requests=48,
        batch_size=2,
    )
    print(format_table(ExperimentRecord.ROW_HEADERS, [r.row() for r in records]))

    liger_max = max(r.throughput for r in records if r.strategy == "liger")
    intra_max = max(r.throughput for r in records if r.strategy == "intra")
    print(
        f"\nLiger peak throughput: {liger_max:.1f} req/s "
        f"({liger_max / intra_max:.2f}x the intra-op ceiling)"
    )


if __name__ == "__main__":
    main()
