#!/usr/bin/env python3
"""Look inside Liger: rounds, overlap, decomposition, and the timeline.

Serves a short saturating trace with full tracing enabled and reports the
runtime's internals — how many Algorithm-1 rounds ran, how full the overlap
windows were, how often runtime kernel decomposition fired, how much
communication wall time was hidden under computation — and writes a Chrome
trace (`chrome://tracing` / https://ui.perfetto.dev) of the whole schedule.

Run:
    python examples/schedule_inspection.py [trace.json]
"""

import sys

from repro import OPT_30B, v100_nvlink_node
from repro.core import LigerConfig
from repro.experiments.figures import PINNED_FACTORS
from repro.parallel import InterleavedStrategy
from repro.serving import Server
from repro.serving.workload import general_trace
from repro.sim.kernel import KernelKind


def main() -> None:
    node = v100_nvlink_node(4)
    strat = InterleavedStrategy(
        OPT_30B,
        node,
        config=LigerConfig(contention_factors=PINNED_FACTORS["v100"]),
    )
    server = Server(OPT_30B, node, strat, record_trace=True)
    batches = general_trace(num_requests=32, rate=55.0, batch_size=2, seed=1)
    result = server.run(batches)
    print(result.summary(), "\n")

    stats = strat.stats
    print("Liger runtime internals:")
    print(f"  rounds launched        : {stats.rounds_launched}")
    print(f"  kernels launched       : {stats.kernels_launched}")
    print(f"  mean window fill       : {stats.mean_fill_fraction:.1%}")
    print(f"  decomposed pieces      : {stats.decomposed_pieces}")

    trace = server.trace
    print("\nPer-GPU overlap (from the timeline):")
    for g in range(node.num_gpus):
        comm = trace.busy_time(g, KernelKind.COMM) / 1e3
        hidden = trace.overlap_time(g) / 1e3
        eff = trace.overlap_efficiency(g)
        print(
            f"  gpu{g}: comm wall {comm:8.1f} ms, "
            f"hidden under compute {hidden:8.1f} ms ({eff:.0%})"
        )

    from repro.experiments import serving_report

    print("\n" + serving_report(result, node.num_gpus))

    out = sys.argv[1] if len(sys.argv) > 1 else "liger_trace.json"
    trace.save_chrome_trace(out)
    print(f"\nChrome trace written to {out} (open in chrome://tracing)")


if __name__ == "__main__":
    main()
