#!/usr/bin/env python3
"""Fault injection: a straggling GPU breaks Principle 1; Liger degrades and recovers.

Serves OPT-13B on a simulated 4×V100 node while GPU 1 runs its compute
kernels 4× slower for the first 400 ms (an SM-clock throttle: collectives,
being link-bound, are untouched).  That asymmetry is precisely what breaks
Liger's Principle 1 — compute secondary subsets outlive their
communication-primary windows — so the recovery layer:

1. detects the executed-round violations (the plan still validated!),
2. downgrades to plain intra-op after the violation threshold,
3. probes while degraded, and upgrades back once the fault window clears,
4. reports the whole arc in a ResilienceReport.

Every request completes despite the fault; the same run with no fault plan
reproduces the clean timeline bit-for-bit.

Run:
    python examples/fault_injection.py
"""

from repro import FaultPlan, GpuStraggler, serve, v100_nvlink_node
from repro.models.specs import OPT_13B


def main() -> None:
    node = v100_nvlink_node(4)
    kwargs = dict(
        model=OPT_13B,
        node=node,
        strategy="liger",
        arrival_rate=40.0,  # enough overlap for interleaving to matter
        num_requests=32,
        batch_size=2,
        seed=1,
    )

    print(f"Serving {OPT_13B.name} on {node.name} ({node.num_gpus} GPUs)\n")

    clean = serve(**kwargs)
    print("clean:  ", clean.summary())

    # GPU 1's compute runs 4x slower for the first 400 ms of simulated time.
    plan = FaultPlan(
        [GpuStraggler(start=0.0, end=400_000.0, gpu=1, factor=4.0)]
    )
    faulted = serve(**kwargs, fault_plan=plan)
    print("faulted:", faulted.summary())

    report = faulted.resilience
    print()
    print(report.describe())

    assert faulted.metrics.num_completed == 32, "no request may be lost"
    assert report.downgrades == 1 and report.recovered
    print(
        "\nThe run rode out the straggler: interleaving was suspended while "
        "it made Principle 1 unsatisfiable, served on the intra-op fallback, "
        f"and resumed {report.recovery_times_us[0] / 1e3:.0f} ms later — "
        "with every request accounted for."
    )


if __name__ == "__main__":
    main()
