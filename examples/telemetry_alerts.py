#!/usr/bin/env python3
"""Telemetry: SLO burn-rate alerts and critical-path analytics on a
bursty, overloaded cluster run.

Runs a seeded 3-replica chaos scenario (one mid-run node crash) at a
request rate well past what the fleet can serve on time, with the
telemetry store and two SLO policies armed:

* ``latency-p99`` — completed requests must finish under 50 ms; under
  this overload nearly every window blows through it, so the fast
  burn-rate window (Google SRE style: long AND short spans over the
  threshold) must page.
* ``availability`` — sheds/timeouts burn the error budget.

Artifacts:

* ``telemetry-series.json`` — the windowed time-series dump.
* ``telemetry-metrics.prom`` — end-of-run Prometheus exposition
  (includes ``repro_slo_alerts_total``).
* ``telemetry-timeline.json`` — merged Perfetto timeline; the fired
  alerts appear as ``slo-burn-alert`` control instants.
* ``telemetry-report.txt`` — the critical-path report: per-GPU
  compute/comm/contention/idle attribution plus ranked top segments.

The run asserts its own outputs: at least one fast-burn alert fired, the
alert is visible in both the Prometheus export and the merged timeline,
and every lane's attribution sums to the run makespan.

Run:
    python examples/telemetry_alerts.py
"""

import json

from repro.cluster.chaos import ChaosConfig, run_chaos
from repro.obs import Observability, ObservabilityConfig, validate_merged_trace
from repro.obs.slo import BurnRule, SloPolicy

SERIES_PATH = "telemetry-series.json"
METRICS_PATH = "telemetry-metrics.prom"
TIMELINE_PATH = "telemetry-timeline.json"
REPORT_PATH = "telemetry-report.txt"


def main() -> None:
    policies = (
        SloPolicy(
            "latency-p99",
            objective="latency",
            target=0.99,
            latency_threshold_ms=50.0,
            fast=BurnRule("fast", long_windows=4, short_windows=2, threshold=10.0),
        ),
        SloPolicy("availability", target=0.99),
    )
    obs = Observability(
        ObservabilityConfig(telemetry=True, window_us=50_000.0, slo_policies=policies)
    )
    config = ChaosConfig(
        replicas=3,
        strategy="intra",
        layers=8,
        rate=2000.0,         # well past the fleet's on-time capacity
        num_requests=96,
        batch_size=2,
        crashes=1,           # one seeded mid-run node crash
        seed=7,
        record_trace=True,
    )
    print(
        f"Chaos run: {config.replicas} replicas, {config.num_requests} "
        f"requests at {config.rate:.0f} req/s, {config.crashes} crash, "
        f"seed {config.seed}\n"
    )
    report = run_chaos(config, observability=obs)
    print(report.describe())

    # ------------------------------------------------------------------
    # Alerts: the overloaded fleet must page.
    # ------------------------------------------------------------------
    print()
    print(obs.slo.alert_table())
    fast_alerts = [a for a in obs.slo.alerts if a.severity == "fast"]
    assert fast_alerts, "expected at least one fast-window burn-rate alert"

    # ------------------------------------------------------------------
    # Critical path: attribution must partition the makespan exactly.
    # ------------------------------------------------------------------
    path_report = obs.critical_path(traces=report.result.traces)
    with open(REPORT_PATH, "w", encoding="utf-8") as fh:
        fh.write(path_report.describe())
    print(path_report.describe())
    for lane in path_report.per_gpu:
        drift = abs(lane.total_us - path_report.makespan_us)
        assert drift < 1e-6 * max(1.0, path_report.makespan_us), (
            f"{lane.lane}: attribution {lane.total_us} != makespan "
            f"{path_report.makespan_us}"
        )

    # ------------------------------------------------------------------
    # Exports, validated.
    # ------------------------------------------------------------------
    obs.save_series(SERIES_PATH)
    obs.save_prometheus(METRICS_PATH)
    counts = obs.save_merged_trace(TIMELINE_PATH, traces=report.result.traces)
    print(f"{SERIES_PATH}: windowed time-series")
    print(f"{METRICS_PATH}: Prometheus text exposition")
    print(f"{TIMELINE_PATH}: {counts['kernel']} kernel slice(s), "
          f"{counts['span']} span segment(s), {counts['instant']} instant(s)")
    print(f"{REPORT_PATH}: critical-path report")

    with open(METRICS_PATH) as fh:
        prom = fh.read()
    assert 'repro_slo_alerts_total{policy="latency-p99",severity="fast"}' in prom, (
        "fast-burn alert missing from the Prometheus export"
    )

    with open(TIMELINE_PATH) as fh:
        timeline = json.load(fh)
    alert_instants = [
        ev for ev in timeline["traceEvents"] if ev.get("name") == "slo-burn-alert"
    ]
    assert alert_instants, "slo-burn-alert instant missing from the timeline"
    validate_merged_trace(timeline)

    with open(SERIES_PATH) as fh:
        series = json.load(fh)
    assert series["windows"], "telemetry store recorded no windows"
    burn_series = obs.telemetry.series(
        "repro_slo_burn_rate", policy="latency-p99", severity="fast"
    )
    assert burn_series, "burn-rate series missing from the store"

    print(
        f"\nAll checks passed: {len(fast_alerts)} fast-burn alert(s) fired, "
        f"visible in the Prometheus export and as {len(alert_instants)} "
        f"timeline instant(s); attribution sums to the makespan on "
        f"{len(path_report.per_gpu)} lane(s)."
    )


if __name__ == "__main__":
    main()
