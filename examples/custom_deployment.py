#!/usr/bin/env python3
"""Deploy Liger on *your* hardware and model.

Everything in the library is parameterised: define a custom GPU, build a
node topology, describe a custom transformer, run the offline preprocessing
(kernel profile + contention factors, §3.5), check memory placement, and
serve.  This is the path a downstream user takes to evaluate interleaved
parallelism for a deployment the paper never measured — here, an 8-GPU
node of mid-range accelerators behind one PCIe switch.

Run:
    python examples/custom_deployment.py
"""

from repro import GpuSpec, NodeSpec
from repro.core import LigerConfig
from repro.hw.topology import pcie_switch
from repro.models import ModelSpec, check_placement
from repro.parallel import InterleavedStrategy, IntraOpStrategy
from repro.profiling import ContentionProfiler, OpProfiler
from repro.serving import Server
from repro.serving.workload import general_trace
from repro.sim.interconnect import NcclConfig
from repro.units import GB, GBps, TFLOPS, us


def main() -> None:
    # --- 1. describe the hardware -----------------------------------
    gpu = GpuSpec(
        name="MidRange-24GB",
        fp16_flops=TFLOPS(90.0),
        memory_bandwidth=GBps(700.0),
        memory_capacity=GB(24.0),
        num_sms=64,
        kernel_launch_overhead=us(6.0),
    )
    node = NodeSpec(
        name="custom-pcie-x8",
        gpu=gpu,
        topology=pcie_switch(8, lane_bandwidth=GBps(12.0),
                             allreduce_bus_bandwidth=GBps(10.5)),
    )

    # --- 2. describe the model ---------------------------------------
    model = ModelSpec(
        name="MyLLM-40B",
        num_layers=48,
        num_heads=64,
        hidden_size=8192,
        weight_bytes=GB(80.0),
    )
    check_placement(model, node)  # raises if the shards don't fit
    print(f"{model.name} ({model.weight_bytes/1e9:.0f} GB) fits on {node.name}: "
          f"{model.weight_bytes_per_device(node.num_gpus)/1e9:.1f} GB/device\n")

    # --- 3. offline preprocessing (Fig. 5) ---------------------------
    profiler = OpProfiler(node, nccl=NcclConfig().reduced())
    factors = ContentionProfiler(node, profiler).profile(model)
    print(f"profiled contention factors: compute={factors.compute:.3f} "
          f"comm={factors.comm:.3f}\n")

    # --- 4. serve ------------------------------------------------------
    for strat in (
        IntraOpStrategy(model, node),
        InterleavedStrategy(
            model, node, profiler=profiler,
            config=LigerConfig(contention_factors=factors),
        ),
    ):
        batches = general_trace(num_requests=48, rate=26.0, batch_size=4, seed=2)
        result = Server(model, node, strat).run(batches)
        print(result.summary())


if __name__ == "__main__":
    main()
