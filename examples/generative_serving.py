#!/usr/bin/env python3
"""Generative inference: incremental sampling with a KV cache (§4.3).

Token generation processes one token per request per step, reading the
whole cached context in attention — low computational intensity, small
collectives.  Liger still helps, but less than on prefill-style workloads:
this example quantifies that gap by serving both phases on the same node.

Run:
    python examples/generative_serving.py
"""

from repro import GLM_130B, a100_pcie_node, serve
from repro.core import LigerConfig
from repro.experiments.figures import PINNED_FACTORS


def main() -> None:
    node = a100_pcie_node(4)
    cfg = LigerConfig(contention_factors=PINNED_FACTORS["a100"])
    print(f"Serving {GLM_130B.name} on {node.name}\n")

    print("-- incremental sampling (decode): batch 32, context 16 --")
    gains = {}
    # Both rates sit ~20–35% past the intra-op saturation point of their
    # workload, where interleaving has communication to hide.
    for workload, rate, n, batch in (
        ("generative", 900.0, 512, 32),
        ("general", 23.0, 40, 2),
    ):
        results = {}
        for strategy in ("intra", "liger"):
            kwargs = {"config": cfg} if strategy == "liger" else {}
            results[strategy] = serve(
                model=GLM_130B,
                node=node,
                strategy=strategy,
                workload=workload,
                arrival_rate=rate,
                num_requests=n,
                batch_size=batch,
                **kwargs,
            )
            print(results[strategy].summary())
        gains[workload] = (
            results["liger"].throughput / results["intra"].throughput
        )
        if workload == "generative":
            print("\n-- prefill (general task): batch 2, seq 16-128 --")

    print(
        f"\nLiger throughput gain: {gains['generative']:.2f}x on decode vs "
        f"{gains['general']:.2f}x on prefill — generative tasks leave less "
        "communication to hide (the paper's §4.3 observation)."
    )


if __name__ == "__main__":
    main()
