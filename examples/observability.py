#!/usr/bin/env python3
"""Observability: one merged Perfetto timeline plus Prometheus metrics.

Serves decode-heavy bursty traffic at roughly twice the sustainable rate
through a scaled OPT-30B on a simulated 4xV100 node, with admission
control armed so the run actually sheds — then exports everything the
observability layer saw:

* ``observability-trace.json`` — the merged Chrome/Perfetto timeline:
  kernel slices (one process per GPU), per-request spans
  (queued/prefill/decode, one thread per request), and control instants
  (sheds, breaker trips) on a single time axis.  Load it at
  https://ui.perfetto.dev or chrome://tracing.
* ``observability-metrics.prom`` — Prometheus text exposition whose
  counters agree with the run's ``ServingMetrics``.
* ``observability-snapshot.json`` — the JSON snapshot: counters,
  heartbeat-sampled gauges, histograms, and span summaries.

The run asserts its own outputs: both exports are non-empty and
JSON-valid, the trace contains all three event classes, and the
registry's terminal-request counters match the serving layer's.

Run:
    python examples/observability.py
"""

import json

from repro import OverloadConfig, v100_nvlink_node
from repro.models import OPT_30B
from repro.obs import Observability, validate_merged_trace
from repro.serving import BurstyProcess, Server
from repro.serving.api import make_strategy
from repro.serving.workload import generative_trace

MODEL = OPT_30B.scaled_layers(6)
NODE = v100_nvlink_node(4)
N = 512

TRACE_PATH = "observability-trace.json"
METRICS_PATH = "observability-metrics.prom"
SNAPSHOT_PATH = "observability-snapshot.json"


def main() -> None:
    print(f"Serving {N} bursty decode requests on {NODE.name} "
          f"({NODE.num_gpus} GPUs) with observability armed\n")

    # Batch-8 decode steps over a 256-token context at a 4000 req/s mean
    # rate, arriving in 6x-rate bursts: ~2x what the node can sustain.
    workload = generative_trace(
        N, 4000.0, batch_size=8, context_len=256, seed=0,
        arrival=BurstyProcess(4000.0, burstiness=6.0, phase_requests=64),
    )
    obs = Observability()
    server = Server(
        MODEL, NODE, make_strategy("intra", MODEL, NODE),
        check_memory=False, record_trace=True,
        overload=OverloadConfig(
            max_pending_requests=32,
            policy="shed-oldest",
            default_deadline_us=100_000.0,  # 100 ms SLO
        ),
        observability=obs,
    )
    result = server.run(workload)

    m = result.metrics
    print(f"served {m.num_completed}/{N}, {m.shed_requests} shed, "
          f"{m.timed_out_requests} timed out, "
          f"{len(obs.events)} events published\n")

    counts = obs.save_merged_trace(TRACE_PATH, trace=result.trace)
    obs.save_prometheus(METRICS_PATH)
    obs.save_snapshot(SNAPSHOT_PATH)
    print(f"{TRACE_PATH}: {counts['kernel']} kernel slice(s), "
          f"{counts['span']} request span segment(s), "
          f"{counts['instant']} control instant(s)")
    print(f"{METRICS_PATH}: Prometheus text exposition")
    print(f"{SNAPSHOT_PATH}: counters + gauge samples + spans")

    # The example doubles as a smoke test: validate everything it wrote.
    with open(TRACE_PATH) as fh:
        trace_obj = json.load(fh)  # JSON-valid
    assert trace_obj["traceEvents"], "merged trace must be non-empty"
    reread = validate_merged_trace(trace_obj)
    assert reread["kernel"] > 0, "kernel slices missing from the timeline"
    assert reread["span"] > 0, "request spans missing from the timeline"
    assert reread["instant"] > 0, "control instants missing from the timeline"

    with open(METRICS_PATH) as fh:
        prom = fh.read()
    assert "repro_requests_terminal_total" in prom

    with open(SNAPSHOT_PATH) as fh:
        snapshot = json.load(fh)  # JSON-valid
    assert snapshot["samples"], "heartbeat gauge samples missing"

    # The registry derived its numbers from the bus independently of the
    # serving layer's hand-kept aggregates; they must agree.
    terminal = obs.registry._counters["repro_requests_terminal_total"]
    assert terminal.value(state="completed") == m.num_completed
    assert terminal.value(state="shed") == m.shed_requests
    assert terminal.value(state="timed_out") == m.timed_out_requests

    print("\nAll exports validated: one timeline, three event classes, "
          "and Prometheus counters that agree with ServingMetrics.")


if __name__ == "__main__":
    main()
