#!/usr/bin/env python3
"""Replicated failover: kill 1 of 3 replicas mid-burst, keep serving.

Serves one bursty workload through a 3-replica cluster twice:

1. **healthy** — all three replicas stay up for the whole run.
2. **faulted** — replica 1 crashes permanently in the middle of the
   arrival burst.  The router's health sweep detects the death, fails the
   node's in-flight batches over to the survivors, and routes everything
   that arrives afterwards around the hole.

The run asserts the fault-tolerance contract explicitly: every admitted
request still reaches exactly one terminal state, at least one batch is
re-dispatched by failover, and goodput *degrades proportionally* — losing
a third of the fleet may cost throughput, but it must not collapse
completed work below the survivors' fair share.

Run:
    python examples/cluster_failover.py
"""

from repro.cluster import Cluster
from repro.faults import FaultPlan, NodeCrash
from repro.faults.resilience import ReplicaRecoveryConfig
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.serving.workload import general_trace

MODEL = OPT_30B.scaled_layers(2)
NODE = v100_nvlink_node(2)
N_REQUESTS = 48
RATE = 6_000.0  # req/s — a burst dense enough to keep all replicas busy


def run(plan):
    cluster = Cluster(
        MODEL, NODE,
        replicas=3,
        strategy="intra",
        fault_plan=plan,
        recovery=ReplicaRecoveryConfig(health_check_period_us=2_000.0),
        check_memory=False,
        seed=0,
    )
    return cluster.run(general_trace(N_REQUESTS, RATE, 2, seed=0))


def main():
    healthy = run(None)
    # Replica 1 dies ~mid-burst and never comes back.
    faulted = run(
        FaultPlan([NodeCrash(start=8_000.0, end=float("inf"), node=1)])
    )

    print("healthy:", healthy.summary())
    print("faulted:", faulted.summary())
    print(faulted.resilience.describe())

    # Liveness: nothing is ever lost, with or without the crash.
    for result in (healthy, faulted):
        terminal = (
            result.completed_requests
            + result.shed_requests
            + result.timed_out_requests
        )
        assert terminal == result.num_requests, result.summary()
        assert result.router_completed_requests == result.completed_requests
        assert result.unhealthy_dispatches == 0

    # The crash was real: work was in flight on replica 1 and moved.
    assert faulted.resilience.unhealthy_marks >= 1
    assert faulted.resilience.failovers >= 1

    # Graceful degradation, not collapse: losing 1 of 3 replicas may shed
    # the detection-window stragglers, but the survivors keep at least
    # their proportional share of the healthy run's completed work.
    floor = (2 / 3) * healthy.goodput
    assert faulted.goodput >= floor, (
        f"goodput collapsed: {faulted.goodput:.1%} < {floor:.1%}"
    )
    print(
        f"goodput {healthy.goodput:.1%} -> {faulted.goodput:.1%} "
        f"(proportional floor {floor:.1%}), "
        f"{faulted.resilience.failovers} failover(s) — OK"
    )


if __name__ == "__main__":
    main()
