#!/usr/bin/env python3
"""Quickstart: serve a large language model with Liger on a multi-GPU node.

Serves OPT-30B on a simulated 4×V100 NVLink node (the paper's first
testbed) under a random general-task trace, with Liger's interleaved
parallelism and with the Megatron-style intra-operator baseline, and prints
the paper's two metrics for both.

Run:
    python examples/quickstart.py
"""

from repro import OPT_30B, serve, v100_nvlink_node


def main() -> None:
    node = v100_nvlink_node(4)
    print(f"Serving {OPT_30B.name} on {node.name} ({node.num_gpus} GPUs)\n")

    # An arrival rate past the intra-op saturation point, where interleaved
    # parallelism shows its throughput advantage.
    rate = 55.0

    for strategy in ("intra", "liger"):
        result = serve(
            model=OPT_30B,
            node=node,
            strategy=strategy,
            arrival_rate=rate,
            num_requests=64,
            batch_size=2,
        )
        print(result.summary())

    print(
        "\nLiger keeps intra-op's low latency while pushing throughput past "
        "its ceiling by overlapping one batch's all-reduces with other "
        "batches' computation (interleaved parallelism, PPoPP'24 §3.1)."
    )


if __name__ == "__main__":
    main()
