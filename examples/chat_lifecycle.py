#!/usr/bin/env python3
"""End-to-end chat serving: prefill + token generation under one runtime.

The paper evaluates prefill (§4.2) and decode (§4.3) separately; a chat
backend runs both for every request.  This example serves complete chat
jobs — a 16–128-token prompt followed by a 4–16-token response — through the
lifecycle server, which prefills prompts in small batches and decodes with
continuous batching.  Under Liger, one request's prefill GEMMs overlap other
requests' decode all-reduces: the two phases interleave across requests.

Reported per strategy: TTFT (time to first token — what a user perceives as
responsiveness), full latency, and token throughput.

Run:
    python examples/chat_lifecycle.py
"""

from repro import OPT_30B, a100_pcie_node
from repro.core import LigerConfig
from repro.experiments.figures import PINNED_FACTORS
from repro.serving import LifecycleServer, chat_workload
from repro.serving.api import make_strategy


def main() -> None:
    model = OPT_30B
    node = a100_pcie_node(4)
    print(f"Chat serving with {model.name} on {node.name}: "
          "48 requests (prompt 16-128 tokens, response 4-16 tokens)\n")

    for strategy_name in ("intra", "liger"):
        kwargs = (
            {"config": LigerConfig(contention_factors=PINNED_FACTORS["a100"])}
            if strategy_name == "liger"
            else {}
        )
        strat = make_strategy(strategy_name, model, node, **kwargs)
        server = LifecycleServer(
            model, node, strat,
            prefill_batch=4, max_decode_batch=16, decode_pipeline_depth=3,
        )
        result = server.run(chat_workload(48, rate=40.0, seed=17))
        print(result.summary())
        print(
            f"          TTFT p99 {result.ttft.p99:7.1f} ms | "
            f"latency p99 {result.latency.p99:7.1f} ms"
        )

    print(
        "\nLiger trims both time-to-first-token and full latency: prefill "
        "and decode batches of different requests donate each other their "
        "idle communication windows."
    )


if __name__ == "__main__":
    main()
