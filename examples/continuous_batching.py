#!/usr/bin/env python3
"""Token generation at scale: continuous batching × interleaved parallelism.

A chatbot backend generates responses of very different lengths.  Static
batching pads every request in a batch to the longest response and releases
the whole batch at once; Orca-style continuous batching re-forms the running
batch at every decode iteration.  Liger's interleaved parallelism is
orthogonal: it overlaps the all-reduces of one in-flight iteration with the
GEMMs of another.  This example measures all four combinations.

Run:
    python examples/continuous_batching.py
"""

from repro import OPT_30B, v100_nvlink_node
from repro.core import LigerConfig
from repro.experiments.figures import PINNED_FACTORS
from repro.serving import (
    ContinuousBatchingServer,
    StaticBatchingServer,
    generation_workload,
)
from repro.serving.api import make_strategy


def main() -> None:
    model = OPT_30B
    node = v100_nvlink_node(4)
    print(f"Generating with {model.name} on {node.name}: "
          "64 requests, 4-16 output tokens each\n")

    for server_cls, size_kw in (
        (StaticBatchingServer, {"batch_size": 16}),
        (ContinuousBatchingServer, {"max_batch": 16, "pipeline_depth": 3}),
    ):
        for strategy_name in ("intra", "liger"):
            kwargs = (
                {"config": LigerConfig(contention_factors=PINNED_FACTORS["v100"])}
                if strategy_name == "liger"
                else {}
            )
            strat = make_strategy(strategy_name, model, node, **kwargs)
            server = server_cls(model, node, strat, **size_kw)
            requests = generation_workload(
                64, rate=700.0, context_len=16, gen_tokens=(4, 16), seed=21
            )
            result = server.run(requests)
            print(
                f"{result.strategy:>18s}: avg latency "
                f"{result.avg_latency_ms:7.1f} ms  "
                f"(p99 {result.latency_stats().p99:7.1f} ms), "
                f"{server.total_tokens} iteration-tokens"
            )

    print(
        "\nContinuous batching removes padding waste and releases short "
        "requests early; Liger then hides each iteration's all-reduces "
        "under other iterations' compute. The two compose."
    )


if __name__ == "__main__":
    main()
