#!/usr/bin/env python3
"""Overload protection: graceful degradation under a 2× burst vs collapse.

Serves decode-heavy bursty traffic at roughly twice the sustainable rate
through a scaled OPT-30B on a simulated 4×V100 node, twice:

1. **unprotected** — the classic unbounded queue.  Every request is
   eventually served, so throughput looks healthy, but queueing delay
   compounds across the burst and tail latency collapses.
2. **protected** — `OverloadConfig` arms a bounded admission queue
   (shed-oldest), a 100 ms deadline on every request, and KV-cache
   accounting.  The server refuses what it cannot serve on time; what it
   does serve stays fast.

The run asserts the trade explicitly: the protected server sheds real work
*and* beats the unprotected server on both mean and p99 latency, while its
pending queue and per-GPU KV usage stay within their configured bounds.

Run:
    python examples/overload.py
"""

from repro import OverloadConfig, v100_nvlink_node
from repro.models import OPT_30B
from repro.serving import BurstyProcess, Server
from repro.serving.api import make_strategy
from repro.serving.workload import generative_trace

MODEL = OPT_30B.scaled_layers(6)
NODE = v100_nvlink_node(4)
N = 512


def overloaded_trace():
    # Batch-8 decode steps over a 256-token context at a 4000 req/s mean
    # rate, arriving in 6×-rate bursts: ~2× what the node can sustain.
    return generative_trace(
        N, 4000.0, batch_size=8, context_len=256, seed=0,
        arrival=BurstyProcess(4000.0, burstiness=6.0, phase_requests=64),
    )


def run(overload):
    strategy = make_strategy("intra", MODEL, NODE)
    server = Server(
        MODEL, NODE, strategy,
        check_memory=False, record_trace=False, overload=overload,
    )
    return server.run(overloaded_trace())


def main() -> None:
    print(f"Serving {N} bursty decode requests on {NODE.name} "
          f"({NODE.num_gpus} GPUs), ~2x the sustainable rate\n")

    unprotected = run(None)
    u = unprotected.latency_stats()
    print(f"unprotected: {unprotected.metrics.num_completed}/{N} served, "
          f"mean {u.mean:.1f} ms, p99 {u.p99:.1f} ms "
          "(unbounded queue: nothing refused, everything late)")

    cfg = OverloadConfig(
        max_pending_requests=32,
        policy="shed-oldest",
        default_deadline_us=100_000.0,  # 100 ms SLO
    )
    protected = run(cfg)
    p = protected.latency_stats()
    m = protected.metrics
    rpt = protected.overload
    print(f"protected:   {m.num_completed}/{N} served, "
          f"mean {p.mean:.1f} ms, p99 {p.p99:.1f} ms "
          f"({m.shed_requests} shed, {m.timed_out_requests} timed out)")
    print()
    print(rpt.describe())

    att = m.slo_attainment()
    assert m.num_terminal == N, "every request must reach a terminal state"
    assert m.shed_requests > 0, "an overloaded server must refuse work"
    assert p.p99 < u.p99 and p.mean < u.mean, \
        "admission control must beat the unbounded queue on served latency"
    assert rpt.peak_pending_requests <= cfg.max_pending_requests
    assert rpt.peak_kv_bytes <= rpt.kv_capacity_bytes
    print(
        f"\nThe protected server refused {m.shed_requests + m.timed_out_requests} "
        f"request(s) it could not serve on time and kept p99 at "
        f"{p.p99:.1f} ms vs {u.p99:.1f} ms unprotected "
        f"(SLO attainment {att:.0%}) — graceful degradation instead of "
        "collapse."
    )


if __name__ == "__main__":
    main()
